"""Unit tests for the color planners (paper §V-B partitioning rules)."""

import pytest

from repro.alloc.bpm import PlanError, bpm_assignments
from repro.alloc.planner import plan_colors, plan_is_disjoint
from repro.alloc.policies import Policy
from repro.machine.presets import opteron_6128


@pytest.fixture(scope="module")
def machine():
    return opteron_6128()


def plan(policy, cores, machine):
    return plan_colors(policy, cores, machine.mapping, machine.topology)


CORES_16 = list(range(16))
CORES_8_4N = [0, 1, 4, 5, 8, 9, 12, 13]
CORES_4_4N = [0, 4, 8, 12]


class TestBuddy:
    def test_no_colors(self, machine):
        for a in plan(Policy.BUDDY, CORES_16, machine):
            assert not a.colored


class TestMemColoring:
    def test_16_threads_8_private_local_banks(self, machine):
        assignments = plan(Policy.MEM, CORES_16, machine)
        mapping, topo = machine.mapping, machine.topology
        for i, a in enumerate(assignments):
            assert len(a.mem_colors) == 8
            node = topo.node_of_core(CORES_16[i])
            assert all(
                mapping.node_of_bank_color(c) == node for c in a.mem_colors
            )
            assert a.llc_colors == ()
        assert plan_is_disjoint(assignments)[0]

    def test_fewer_threads_get_more_colors(self, machine):
        assignments = plan(Policy.MEM, CORES_4_4N, machine)
        for a in assignments:
            assert len(a.mem_colors) == 32  # whole node to itself

    def test_mem_share_covers_all_bank_values(self, machine):
        """Each share spans all 8 banks of one channel/rank, so every LLC
        color stays compatible (see presets docstring)."""
        mapping = machine.mapping
        for a in plan(Policy.MEM, CORES_16, machine):
            banks = {mapping.split_bank_color(c)[3] for c in a.mem_colors}
            assert banks == set(range(8))


class TestLlcColoring:
    def test_paper_counts(self, machine):
        """Paper: 16 threads -> two private LLC colors each; 8 -> four."""
        for cores, expected in ((CORES_16, 2), (CORES_8_4N, 4)):
            assignments = plan(Policy.LLC, cores, machine)
            for a in assignments:
                assert len(a.llc_colors) == expected
                assert a.mem_colors == ()
            assert plan_is_disjoint(assignments)[1]

    def test_strided_shares_span_shared_bits(self, machine):
        """Strided LLC shares cover different values of the color bits
        shared with the bank field (keeps several banks usable)."""
        mapping = machine.mapping
        for a in plan(Policy.LLC, CORES_16, machine):
            b0b1 = {(c >> 3) & 0b11 for c in a.llc_colors}
            assert len(b0b1) == 2


class TestMemLlc:
    def test_both_private_disjoint(self, machine):
        assignments = plan(Policy.MEM_LLC, CORES_16, machine)
        mem_ok, llc_ok = plan_is_disjoint(assignments)
        assert mem_ok and llc_ok
        for a in assignments:
            assert a.mem_colors and a.llc_colors

    def test_every_thread_has_compatible_pair(self, machine):
        mapping = machine.mapping
        for a in plan(Policy.MEM_LLC, CORES_16, machine):
            assert any(
                mapping.colors_compatible(bc, lc)
                for bc in a.mem_colors
                for lc in a.llc_colors
            )


class TestPartVariants:
    def test_mem_llc_part_groups_share_llc(self, machine):
        """Paper: 16 threads -> 4 groups, each with 8 private LLC colors
        shared by the group's 4 threads."""
        assignments = plan(Policy.MEM_LLC_PART, CORES_16, machine)
        topo = machine.topology
        by_node = {}
        for i, a in enumerate(assignments):
            assert len(a.llc_colors) == 8
            node = topo.node_of_core(CORES_16[i])
            by_node.setdefault(node, set()).add(a.llc_colors)
        for node, shares in by_node.items():
            assert len(shares) == 1  # group members share one set
        all_colors = [set(s.pop()) for s in by_node.values()]
        for i in range(len(all_colors)):
            for j in range(i + 1, len(all_colors)):
                assert not all_colors[i] & all_colors[j]

    def test_llc_mem_part_shares_node_banks(self, machine):
        assignments = plan(Policy.LLC_MEM_PART, CORES_16, machine)
        mapping, topo = machine.mapping, machine.topology
        for i, a in enumerate(assignments):
            node = topo.node_of_core(CORES_16[i])
            assert set(a.mem_colors) == set(mapping.bank_colors_of_node(node))
            assert len(a.llc_colors) == 2
        # LLC private, MEM shared within node groups.
        mem_ok, llc_ok = plan_is_disjoint(assignments)
        assert llc_ok and not mem_ok


class TestBpm:
    def test_private_but_controller_oblivious(self, machine):
        assignments = bpm_assignments(CORES_16, machine.mapping)
        mem_ok, _ = plan_is_disjoint(assignments)
        assert mem_ok
        mapping, topo = machine.mapping, machine.topology
        # Most threads' banks are spread over several nodes (the flaw).
        for i, a in enumerate(assignments):
            nodes = {mapping.node_of_bank_color(c) for c in a.mem_colors}
            assert len(nodes) > 1

    def test_llc_colors_compatible(self, machine):
        mapping = machine.mapping
        for a in bpm_assignments(CORES_16, mapping):
            assert any(
                mapping.colors_compatible(bc, lc)
                for bc in a.mem_colors
                for lc in a.llc_colors
            )

    def test_deterministic(self, machine):
        a1 = bpm_assignments(CORES_16, machine.mapping)
        a2 = bpm_assignments(CORES_16, machine.mapping)
        assert a1 == a2

    def test_too_many_threads(self, machine):
        with pytest.raises(PlanError):
            bpm_assignments(list(range(129)), machine.mapping)


class TestValidation:
    def test_duplicate_cores_rejected(self, machine):
        with pytest.raises(ValueError):
            plan(Policy.MEM, [0, 0], machine)

    def test_empty_team_rejected(self, machine):
        with pytest.raises(ValueError):
            plan(Policy.MEM, [], machine)


class TestPolicyFlags:
    def test_flags_match_definitions(self):
        assert Policy.BUDDY.colors_memory is False
        assert Policy.BPM.colors_memory and Policy.BPM.colors_llc
        assert not Policy.BPM.controller_aware
        assert Policy.MEM_LLC.controller_aware
        assert Policy.LLC.colors_llc and not Policy.LLC.colors_memory
        assert Policy.MEM.colors_memory and not Policy.MEM.colors_llc
