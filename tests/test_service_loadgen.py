"""Load generator: schedule determinism, shape, and clocked replay.

The load generator's contract is *byte identity*: the same seed and
parameters must serialize to the same canonical schedule string in any
process on any run — that is what makes fleet-capacity trajectory
points at different worker counts comparable, and what lets a chaos
campaign replay the exact load that exposed a bug.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.service.clock import FakeClock
from repro.service.loadgen import DEFAULT_PHASES, LoadGen

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_same_seed_same_bytes_same_process():
    a = LoadGen(seed=42, jobs=64, catalog=16)
    b = LoadGen(seed=42, jobs=64, catalog=16)
    assert a.canonical() == b.canonical()
    assert a.schedule_digest() == b.schedule_digest()


def test_different_seed_different_schedule():
    assert (LoadGen(seed=1, jobs=32).canonical()
            != LoadGen(seed=2, jobs=32).canonical())


def test_parameter_changes_change_identity():
    base = LoadGen(seed=3, jobs=32)
    assert base.canonical() != LoadGen(seed=3, jobs=32,
                                       zipf_s=0.3).canonical()
    assert base.canonical() != LoadGen(seed=3, jobs=32,
                                       kind="sleep",
                                       config="10ms").canonical()
    assert base.canonical() != LoadGen(
        seed=3, jobs=32, phases=((1.0, 5.0),)).canonical()


def test_cross_process_byte_identity():
    """A fresh interpreter derives the identical canonical schedule."""
    gen = LoadGen(seed=1311, jobs=64, catalog=24, zipf_s=0.8)
    script = (
        "import sys; sys.path.insert(0, sys.argv[1])\n"
        "from repro.service.loadgen import LoadGen\n"
        "sys.stdout.write(LoadGen(seed=1311, jobs=64, catalog=24,"
        " zipf_s=0.8).canonical())\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script, str(REPO_ROOT / "src")],
        capture_output=True, text=True, check=True,
    )
    assert out.stdout == gen.canonical()


def test_schedule_shape():
    gen = LoadGen(seed=5, jobs=100, catalog=10, zipf_s=1.2)
    arrivals = gen.schedule()
    assert len(arrivals) == 100
    times = [a.t_s for a in arrivals]
    assert times == sorted(times)
    assert all(t > 0 for t in times)
    assert [a.seq for a in arrivals] == list(range(100))
    assert all(0 <= a.index < 10 for a in arrivals)
    # Zipf skew: the hottest spec should clearly dominate a uniform share.
    stats = gen.stats()
    assert stats["hottest_share"] > 1.5 / 10
    assert stats["distinct_specs"] <= 10


def test_catalog_specs_are_digest_distinct():
    gen = LoadGen(seed=0, jobs=8, catalog=12)
    digests = {spec.digest() for spec in gen.catalog_specs()}
    assert len(digests) == 12


def test_replay_on_fake_clock_hits_exact_arrival_times():
    gen = LoadGen(seed=9, jobs=32, catalog=8)
    clock = FakeClock(start=100.0)
    seen = []
    count = gen.run(
        lambda spec, arrival: seen.append(
            (clock.monotonic(), arrival.seq, spec.digest())
        ),
        clock=clock,
    )
    assert count == 32
    expected = [100.0 + a.t_s for a in gen.schedule()]
    got = [t for t, _, _ in seen]
    assert got == pytest.approx(expected)
    # Replays submit the catalog spec the schedule names, in order.
    specs = gen.catalog_specs()
    for (_, seq, digest), arrival in zip(seen, gen.schedule()):
        assert seq == arrival.seq
        assert digest == specs[arrival.index].digest()


def test_burst_phases_modulate_rate():
    """A fast middle phase must pack arrivals more densely."""
    gen = LoadGen(seed=11, jobs=400, catalog=4,
                  phases=((2.0, 10.0), (2.0, 200.0)))
    arrivals = gen.schedule()
    # Phase windows repeat every 4s: [0,2) slow, [2,4) fast.
    slow = sum(1 for a in arrivals if (a.t_s % 4.0) < 2.0)
    fast = len(arrivals) - slow
    assert fast > slow * 5, (slow, fast)


def test_invalid_parameters_raise():
    with pytest.raises(ValueError):
        LoadGen(catalog=0)
    with pytest.raises(ValueError):
        LoadGen(phases=())
    with pytest.raises(ValueError):
        LoadGen(phases=((1.0, 0.0),))
    with pytest.raises(ValueError):
        LoadGen(jobs=-1)
    assert LoadGen(phases=DEFAULT_PHASES).phases == DEFAULT_PHASES
