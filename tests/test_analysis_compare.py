"""Unit tests for the policy comparison helper."""

import pytest

from repro.analysis.compare import compare, comparison_table


class TestCompare:
    def test_clear_winner_separated(self):
        c = compare([70.0, 72.0], [100.0, 104.0])
        assert c.improvement == pytest.approx(1 - 71 / 102)
        assert c.separated
        assert c.verdict() == "separated"

    def test_overlapping_ranges(self):
        c = compare([90.0, 105.0], [100.0, 110.0])
        assert not c.separated
        assert c.verdict() == "overlapping"

    def test_tie(self):
        c = compare([100.0, 100.4], [100.0, 100.4])
        assert c.verdict() == "tied"

    def test_ratio_direction(self):
        c = compare([50.0], [100.0])
        assert c.ratio == pytest.approx(2.0)
        c2 = compare([100.0], [50.0])
        assert c2.ratio == pytest.approx(0.5)
        assert c2.improvement < 0  # A is worse

    def test_table_renders(self):
        rows = {
            "lbm buddy-vs-mem+llc": compare([70.0], [100.0]),
            "art": compare([95.0, 99.0], [100.0, 98.0]),
        }
        out = comparison_table(rows)
        assert "lbm buddy-vs-mem+llc" in out
        assert "separated" in out
        assert "overlapping" in out
