"""Unit tests for the mmap color-control ABI and the Kernel facade."""

import pytest

from repro.kernel import mmapi
from repro.kernel.kernel import Kernel, OutOfColoredMemory
from repro.kernel.mmapi import (
    COLOR_ALLOC,
    PROT_RW,
    clear_llc_color,
    clear_mem_color,
    decode_directive,
    set_llc_color,
    set_mem_color,
)
from repro.kernel.vm import Vma
from repro.machine.presets import tiny_machine
from repro.util.units import MIB


@pytest.fixture
def env(kernel):
    proc = kernel.create_process()
    task = kernel.create_task(proc, core=0)
    return kernel, proc, task


class TestDirectiveEncoding:
    def test_roundtrip(self):
        for build, mode in (
            (set_mem_color, mmapi.MODE_SET_MEM),
            (set_llc_color, mmapi.MODE_SET_LLC),
        ):
            got_mode, got_color = decode_directive(build(17))
            assert (got_mode, got_color) == (mode, 17)

    def test_clear_modes(self):
        assert decode_directive(clear_mem_color())[0] == mmapi.MODE_CLEAR_MEM
        assert decode_directive(clear_llc_color())[0] == mmapi.MODE_CLEAR_LLC

    def test_color_out_of_encodable_range(self):
        with pytest.raises(ValueError):
            set_mem_color(1 << 24)


class TestColorControlSyscall:
    def test_paper_one_liner(self, env):
        """The paper's example: one mmap() call adds one LLC color."""
        kernel, _, task = env
        ret = kernel.sys_mmap(task, set_llc_color(2), 0, PROT_RW | COLOR_ALLOC)
        assert ret == 0
        assert task.llc_colors == [2]
        assert task.using_llc and not task.using_bank

    def test_multiple_calls_accumulate(self, env):
        kernel, _, task = env
        for c in (1, 5, 1):  # duplicate ignored
            kernel.sys_mmap(task, set_mem_color(c), 0, PROT_RW | COLOR_ALLOC)
        assert task.mem_colors == [1, 5]

    def test_clear_resets_policy(self, env):
        kernel, _, task = env
        kernel.sys_mmap(task, set_mem_color(1), 0, PROT_RW | COLOR_ALLOC)
        kernel.sys_mmap(task, clear_mem_color(), 0, PROT_RW | COLOR_ALLOC)
        assert not task.using_bank and task.mem_colors == []

    def test_color_range_validated(self, env):
        kernel, _, task = env
        with pytest.raises(ValueError):
            kernel.sys_mmap(task, set_mem_color(999), 0, PROT_RW | COLOR_ALLOC)
        with pytest.raises(ValueError):
            kernel.sys_mmap(task, set_llc_color(99), 0, PROT_RW | COLOR_ALLOC)

    def test_without_bit30_zero_length_is_error(self, env):
        kernel, _, task = env
        with pytest.raises(ValueError):
            kernel.sys_mmap(task, 0, 0, PROT_RW)

    def test_nonzero_length_with_bit30_maps_normally(self, env):
        """Bit 30 is only honoured for zero-length requests."""
        kernel, _, task = env
        vma = kernel.sys_mmap(task, 0, 4096, PROT_RW | COLOR_ALLOC)
        assert isinstance(vma, Vma)


class TestDemandAllocationPolicies:
    def test_colored_task_gets_colored_frames(self, env):
        kernel, proc, task = env
        kernel.sys_mmap(task, set_mem_color(3), 0, PROT_RW | COLOR_ALLOC)
        vma = kernel.sys_mmap(task, 0, 64 * 1024, PROT_RW)
        for i in range(16):
            paddr, _ = proc.address_space.translate(vma.start + i * 4096, task)
            assert int(kernel.pool.bank_color[paddr >> 12]) == 3

    def test_default_task_first_touch_local(self, kernel):
        proc = kernel.create_process()
        t_far = kernel.create_task(proc, core=2)  # node 1
        vma = kernel.sys_mmap(t_far, 0, 64 * 1024, PROT_RW)
        for i in range(16):
            paddr, _ = proc.address_space.translate(vma.start + i * 4096, t_far)
            assert kernel.pool.node_of_frame(paddr >> 12) == 1

    def test_out_of_colored_memory_raises(self):
        kernel = Kernel(tiny_machine(memory_bytes=4 * MIB))
        proc = kernel.create_process()
        task = kernel.create_task(proc, core=0)
        mapping = kernel.mapping
        mem = mapping.compatible_bank_colors(0, node=0)[0]
        kernel.sys_mmap(task, set_mem_color(mem), 0, PROT_RW | COLOR_ALLOC)
        kernel.sys_mmap(task, set_llc_color(0), 0, PROT_RW | COLOR_ALLOC)
        budget = mapping.frames_per_combo()
        vma = kernel.sys_mmap(task, 0, (budget + 1) * 4096, PROT_RW)
        with pytest.raises(OutOfColoredMemory):
            for i in range(budget + 1):
                proc.address_space.translate(vma.start + i * 4096, task)

    def test_fault_charge_recorded(self, env):
        kernel, proc, task = env
        kernel.sys_mmap(task, set_mem_color(0), 0, PROT_RW | COLOR_ALLOC)
        vma = kernel.sys_mmap(task, 0, 4096, PROT_RW)
        proc.address_space.translate(vma.start, task)
        charge = kernel.last_fault_charge
        assert charge is not None
        assert charge.base_ns == kernel.fault_base_ns
        assert charge.refill_ns > 0  # first colored fault scans buddy blocks


class TestMunmap:
    def test_munmap_frees_frames(self, env):
        kernel, proc, task = env
        vma = kernel.sys_mmap(task, 0, 16 * 4096, PROT_RW)
        for i in range(16):
            proc.address_space.translate(vma.start + i * 4096, task)
        allocated_before = kernel.memory_stats()["allocated"]
        kernel.sys_munmap(task, vma)
        assert kernel.memory_stats()["allocated"] == allocated_before - 16


class TestBoot:
    def test_boot_probes_pci(self, tiny):
        kernel = Kernel(tiny)
        assert kernel.mapping == tiny.mapping

    def test_memory_stats_shape(self, kernel):
        stats = kernel.memory_stats()
        assert stats["buddy"] == kernel.pool.num_frames
        assert stats["allocated"] == 0

    def test_aged_boot_fragments(self, tiny):
        kernel = Kernel(tiny, aged=True, age_seed=1)
        for buddy in kernel.page_allocator.node_buddies:
            assert buddy.fragmented
            assert buddy.free_blocks(0) == buddy.num_frames

    def test_aged_boot_deterministic(self, tiny):
        k1 = Kernel(tiny, aged=True, age_seed=5)
        k2 = Kernel(tiny, aged=True, age_seed=5)
        assert (
            k1.page_allocator.node_buddies[0].pop_head(0)
            == k2.page_allocator.node_buddies[0].pop_head(0)
        )
