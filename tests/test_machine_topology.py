"""Unit tests for the machine topology model."""

import pytest

from repro.machine.presets import opteron_6128, tiny_machine
from repro.machine.topology import CacheGeometry, MachineTopology
from repro.util.units import KIB, MIB


@pytest.fixture
def opteron_topo():
    return opteron_6128().topology


class TestCacheGeometry:
    def test_counts(self):
        g = CacheGeometry(size_bytes=12 * MIB, line_bytes=128, ways=24)
        assert g.num_lines == 98304
        assert g.num_sets == 4096
        assert g.offset_bits == 7
        assert g.index_bits == 12

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=100, line_bytes=64, ways=2)

    def test_non_power_of_two_sets_rejected(self):
        # 3 ways over 12 KiB -> 64 sets is fine; 96 KiB 4-way line 128
        # -> 192 sets is not a power of two.
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=96 * KIB, line_bytes=128, ways=4)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=96 * KIB, line_bytes=96, ways=4)


class TestOpteronTopology:
    def test_counts(self, opteron_topo):
        assert opteron_topo.num_sockets == 2
        assert opteron_topo.num_nodes == 4
        assert opteron_topo.num_cores == 16
        assert opteron_topo.line_bytes == 128

    def test_node_of_core(self, opteron_topo):
        assert opteron_topo.node_of_core(0) == 0
        assert opteron_topo.node_of_core(3) == 0
        assert opteron_topo.node_of_core(4) == 1
        assert opteron_topo.node_of_core(15) == 3

    def test_socket_layout(self, opteron_topo):
        assert opteron_topo.socket_of_node(0) == 0
        assert opteron_topo.socket_of_node(1) == 0
        assert opteron_topo.socket_of_node(2) == 1
        assert opteron_topo.nodes_of_socket(1) == (2, 3)

    def test_cores_of_node(self, opteron_topo):
        assert opteron_topo.cores_of_node(2) == (8, 9, 10, 11)

    def test_hops_local(self, opteron_topo):
        assert opteron_topo.hops(0, 0) == 0
        assert opteron_topo.is_local(5, 1)

    def test_hops_same_socket(self, opteron_topo):
        assert opteron_topo.hops(0, 1) == 1

    def test_hops_cross_socket(self, opteron_topo):
        assert opteron_topo.hops(0, 2) == 2
        assert opteron_topo.hops(15, 0) == 2

    def test_out_of_range(self, opteron_topo):
        with pytest.raises(ValueError):
            opteron_topo.node_of_core(16)
        with pytest.raises(ValueError):
            opteron_topo.hops(0, 4)


class TestTinyTopology:
    def test_single_socket_hops(self):
        topo = tiny_machine().topology
        assert topo.num_nodes == 2
        assert topo.hops(0, 0) == 0
        assert topo.hops(0, 1) == 1  # same socket, other node

    def test_validation_line_mismatch(self):
        l1 = CacheGeometry(8 * KIB, 64, 2)
        llc = CacheGeometry(256 * KIB, 128, 8)
        with pytest.raises(ValueError):
            MachineTopology(
                num_sockets=1, nodes_per_socket=2, cores_per_node=2,
                l1=l1, l2=l1, llc=llc,
            )
