"""Unit tests for the faultline plan/decision layer.

Covers the determinism contract the whole chaos story rests on: fault
decisions are a pure function of (plan seed, site, scope), plans
survive JSON round trips unchanged, the injector enforces ``max_fires``
caps, and the process-global arming point is zero-cost (and leak-free)
when nothing — or an empty plan — is armed.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.faultline import (
    NO_FAULTS,
    SITES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    hooks,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestFaultRuleValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule(site="store.get.iomsipelled")

    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site="worker.kill", probability=1.5)
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site="worker.kill", probability=-0.1)

    def test_negative_max_fires_rejected(self):
        with pytest.raises(ValueError, match="max_fires"):
            FaultRule(site="worker.kill", max_fires=-1)

    def test_scopes_canonicalized_to_tuple(self):
        rule = FaultRule(site="worker.kill", scopes=["a", "b"])
        assert rule.scopes == ("a", "b")

    def test_from_json_ignores_unknown_keys(self):
        rule = FaultRule.from_json(
            {"site": "worker.hang", "arg": 2.0, "added_in_v9": "x"}
        )
        assert rule == FaultRule(site="worker.hang", arg=2.0)


class TestPlanSerialization:
    def _plan(self) -> FaultPlan:
        return FaultPlan(seed=42, rules=(
            FaultRule(site="store.get.io", probability=0.5, max_fires=2),
            FaultRule(site="sched.attempt.kill", scopes=("abc#a0",)),
            FaultRule(site="worker.hang", arg=0.25),
        ))

    def test_dumps_loads_roundtrip_is_identity(self):
        plan = self._plan()
        assert FaultPlan.loads(plan.dumps()) == plan

    def test_wire_roundtrip_preserves_decisions(self):
        plan = self._plan()
        clone = FaultPlan.from_json(json.loads(json.dumps(plan.to_json())))
        for site in SITES:
            for i in range(50):
                scope = f"s{i}"
                assert (clone.decide(site, scope)
                        == plan.decide(site, scope))

    def test_every_site_in_catalogue_is_constructible(self):
        for site in SITES:
            FaultRule(site=site)


class TestPlanDecisions:
    def test_probability_one_always_fires(self):
        plan = FaultPlan(rules=(FaultRule(site="worker.kill"),))
        assert all(
            plan.decide("worker.kill", f"s{i}") is not None
            for i in range(100)
        )

    def test_probability_zero_never_fires_and_plan_is_empty(self):
        plan = FaultPlan(
            rules=(FaultRule(site="worker.kill", probability=0.0),)
        )
        assert plan.empty
        assert all(
            plan.decide("worker.kill", f"s{i}") is None for i in range(100)
        )

    def test_no_faults_is_empty(self):
        assert NO_FAULTS.empty
        assert not FaultPlan(rules=(FaultRule(site="worker.kill"),)).empty

    def test_decide_is_stateless(self):
        plan = FaultPlan(seed=7, rules=(
            FaultRule(site="store.get.io", probability=0.5),
        ))
        first = [plan.decide("store.get.io", f"s{i}") for i in range(200)]
        second = [plan.decide("store.get.io", f"s{i}") for i in range(200)]
        assert first == second

    def test_draw_rate_tracks_probability(self):
        plan = FaultPlan(seed=3, rules=(
            FaultRule(site="store.get.io", probability=0.5),
        ))
        fires = sum(
            plan.decide("store.get.io", f"scope-{i}") is not None
            for i in range(2000)
        )
        assert 0.40 < fires / 2000 < 0.60

    def test_seed_changes_decisions(self):
        rules = (FaultRule(site="store.get.io", probability=0.5),)
        a = FaultPlan(seed=0, rules=rules)
        b = FaultPlan(seed=1, rules=rules)
        decisions_a = [
            a.decide("store.get.io", f"s{i}") is not None for i in range(200)
        ]
        decisions_b = [
            b.decide("store.get.io", f"s{i}") is not None for i in range(200)
        ]
        assert decisions_a != decisions_b

    def test_scope_pinning_is_surgical(self):
        plan = FaultPlan(rules=(
            FaultRule(site="sched.attempt.kill", scopes=("abc#a0",)),
        ))
        assert plan.decide("sched.attempt.kill", "abc#a0") is not None
        assert plan.decide("sched.attempt.kill", "abc#a1") is None
        assert plan.decide("sched.attempt.kill", "def#a0") is None

    def test_first_matching_rule_wins_but_misses_fall_through(self):
        loud = FaultRule(site="worker.kill", probability=1.0, arg=9.0)
        silent = FaultRule(site="worker.kill", probability=0.0)
        assert FaultPlan(rules=(loud, silent)).decide(
            "worker.kill", "x") is loud
        # A rule that does not fire must not shadow a later one that does.
        assert FaultPlan(rules=(silent, loud)).decide(
            "worker.kill", "x") is loud

    def test_decisions_identical_in_a_fresh_process(self):
        """The cross-process replay guarantee, proven at decision level."""
        plan = FaultPlan(seed=1234, rules=(
            FaultRule(site="store.get.io", probability=0.5),
            FaultRule(site="sched.attempt.kill", probability=0.25),
        ))
        sites = ("store.get.io", "sched.attempt.kill")
        local = [
            plan.decide(site, f"s{i}") is not None
            for site in sites for i in range(100)
        ]
        script = (
            "import json, sys\n"
            "from repro.faultline import FaultPlan\n"
            "plan = FaultPlan.loads(sys.argv[1])\n"
            f"sites = {sites!r}\n"
            "out = [plan.decide(site, f's{i}') is not None\n"
            "       for site in sites for i in range(100)]\n"
            "print(json.dumps(out))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, plan.dumps()],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        )
        assert json.loads(proc.stdout) == local


class TestInjector:
    def test_max_fires_caps_per_process(self):
        plan = FaultPlan(rules=(
            FaultRule(site="store.get.io", max_fires=2),
        ))
        injector = FaultInjector(plan)
        outcomes = [
            injector.check("store.get.io", f"s{i}") for i in range(5)
        ]
        assert [o is not None for o in outcomes] \
            == [True, True, False, False, False]
        assert injector.fire_count() == 2

    def test_caps_are_per_rule(self):
        plan = FaultPlan(rules=(
            FaultRule(site="store.get.io", max_fires=1),
            FaultRule(site="store.put.io", max_fires=1),
        ))
        injector = FaultInjector(plan)
        assert injector.check("store.get.io", "a") is not None
        assert injector.check("store.put.io", "a") is not None
        assert injector.check("store.get.io", "b") is None
        assert injector.check("store.put.io", "b") is None
        assert injector.fire_count("store.get.io") == 1
        assert injector.fire_count("store.put.io") == 1

    def test_fired_log_records_site_and_scope(self):
        plan = FaultPlan(rules=(FaultRule(site="worker.kill"),))
        injector = FaultInjector(plan)
        injector.check("worker.kill", "abc")
        injector.check("worker.hang", "abc")  # no rule -> no log entry
        assert injector.fired == [("worker.kill", "abc")]


class TestArmingPoint:
    def test_unarmed_should_fire_is_none(self):
        hooks.disarm()
        assert hooks.active() is None
        assert hooks.should_fire("worker.kill", "x") is None

    def test_arming_empty_plan_disarms(self):
        with hooks.armed(FaultPlan(rules=(FaultRule(site="worker.kill"),))):
            assert hooks.arm(NO_FAULTS) is None
            assert hooks.active() is None
        hooks.disarm()

    def test_armed_scope_restores_previous_injector(self):
        outer_plan = FaultPlan(rules=(FaultRule(site="worker.kill"),))
        inner_plan = FaultPlan(rules=(FaultRule(site="worker.hang"),))
        with hooks.armed(outer_plan) as outer:
            with hooks.armed(inner_plan) as inner:
                assert hooks.active() is inner
                assert hooks.should_fire("worker.hang", "x") is not None
            assert hooks.active() is outer
        assert hooks.active() is None

    def test_should_fire_books_max_fires(self):
        plan = FaultPlan(rules=(
            FaultRule(site="worker.kill", max_fires=1),
        ))
        with hooks.armed(plan) as injector:
            assert hooks.should_fire("worker.kill", "a") is not None
            assert hooks.should_fire("worker.kill", "b") is None
            assert injector.fired == [("worker.kill", "a")]
