"""Unit tests for machine presets."""

import pytest

from repro.machine.presets import MachineSpec, opteron_6128, tiny_machine
from repro.util.units import GIB, MIB


class TestOpteronPreset:
    def test_paper_figures(self):
        spec = opteron_6128()
        # §IV: 16 cores, 4 controllers, 128 bank colors, 32 LLC colors.
        assert spec.topology.num_cores == 16
        assert spec.mapping.num_bank_colors == 128
        assert spec.mapping.num_llc_colors == 32
        assert spec.topology.llc.size_bytes == 12 * MIB
        assert spec.topology.line_bytes == 128

    def test_memory_scaling(self):
        small = opteron_6128(memory_bytes=256 * MIB)
        big = opteron_6128(memory_bytes=8 * GIB)
        assert big.mapping.num_frames == 32 * small.mapping.num_frames
        assert small.mapping.num_bank_colors == big.mapping.num_bank_colors

    def test_fig5_bank_bits(self):
        # The bank field uses the paper's literal Fig. 5 bits, overlapping
        # the LLC color field (see presets docstring).
        spec = opteron_6128()
        assert spec.mapping.fields["bank"] == (15, 16, 18)
        assert spec.mapping.shared_color_bits == 2

    def test_channel_rank_above_llc_index(self):
        # Channel/rank must not constrain LLC sets: they sit above the
        # index, and the only in-index DRAM bits are LLC *color* bits.
        spec = opteron_6128()
        llc_index_top = 7 + spec.topology.llc.index_bits - 1
        for name in ("channel", "rank"):
            for bit in spec.mapping.fields[name]:
                assert bit > llc_index_top
        # Bank bits inside the index are either LLC color bits (handled by
        # compatibility) or covered by both values within any thread's
        # compatible bank set, so coloring never silently halves the LLC.
        color_bits = set(spec.mapping.llc_color_positions)
        in_index_not_color = [
            bit for bit in spec.mapping.fields["bank"]
            if bit <= llc_index_top and bit not in color_bits
        ]
        for llc_color in range(spec.mapping.num_llc_colors):
            banks = spec.mapping.compatible_bank_colors(llc_color, node=0)
            for bit in in_index_not_color:
                values = {
                    (spec.mapping.compose(  # rebuild addresses per bank
                        *spec.mapping.split_bank_color(bc), 0
                    ) >> bit) & 1
                    for bc in banks
                }
                assert values == {0, 1}

    def test_color_compatibility_structure(self):
        # Each bank color is compatible with exactly 8 of the 32 LLC
        # colors (2 shared bits), and every thread-sized bank span (all 8
        # banks of one channel/rank) covers every LLC color.
        mapping = opteron_6128().mapping
        for bc in (0, 5, 77, 127):
            assert len(mapping.compatible_llc_colors(bc)) == 8
        covered = set()
        for bc in range(8):  # banks 0-7 of node 0, channel 0, rank 0
            covered.update(mapping.compatible_llc_colors(bc))
        assert covered == set(range(32))

    def test_non_power_of_two_memory_rejected(self):
        with pytest.raises(ValueError):
            opteron_6128(memory_bytes=3 * GIB)

    def test_too_small_memory_rejected(self):
        with pytest.raises(ValueError):
            opteron_6128(memory_bytes=32 * MIB)


class TestTinyPreset:
    def test_structure(self):
        spec = tiny_machine()
        assert spec.topology.num_cores == 4
        assert spec.mapping.num_bank_colors == 32
        assert spec.mapping.num_llc_colors == 4

    def test_frame_invariance_required(self):
        assert tiny_machine().mapping.frame_colors_invariant()

    def test_coupling_analogue(self):
        # One bank bit overlaps the LLC color field, like the full preset.
        mapping = tiny_machine().mapping
        assert mapping.shared_color_bits == 1
        for bc in range(mapping.num_bank_colors):
            assert len(mapping.compatible_llc_colors(bc)) == 2


class TestMachineSpecValidation:
    def test_node_count_mismatch_rejected(self):
        a, b = opteron_6128(), tiny_machine()
        with pytest.raises(ValueError):
            MachineSpec(topology=a.topology, mapping=b.mapping, pci=b.pci)
