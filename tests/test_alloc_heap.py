"""Unit tests for the user-level malloc heap."""

import pytest

from repro.alloc.heap import ARENA_CHUNK, HeapAllocator, size_class_of


@pytest.fixture
def heap(tm):
    return HeapAllocator(tm.kernel, tm.process)


@pytest.fixture
def task(tm):
    return tm.kernel.create_task(tm.process, core=0)


class TestSizeClasses:
    def test_min_class(self):
        assert size_class_of(1, 4096) == 16
        assert size_class_of(16, 4096) == 16

    def test_rounding_up(self):
        assert size_class_of(17, 4096) == 32
        assert size_class_of(1500, 4096) == 2048

    def test_large_is_none(self):
        assert size_class_of(4096, 4096) is None
        assert size_class_of(2049, 4096) is None

    def test_invalid(self):
        with pytest.raises(ValueError):
            size_class_of(0, 4096)


class TestSmallAllocations:
    def test_distinct_addresses(self, heap, task):
        a = heap.malloc(task, 64)
        b = heap.malloc(task, 64)
        assert a != b
        assert abs(a - b) >= 64

    def test_free_then_reuse(self, heap, task):
        a = heap.malloc(task, 64)
        heap.free(task, a)
        b = heap.malloc(task, 64)
        assert b == a  # size-class free list reuse

    def test_arena_grows(self, heap, task):
        n = ARENA_CHUNK // 1024 + 2
        addrs = [heap.malloc(task, 1024) for _ in range(n)]
        assert len(set(addrs)) == n

    def test_per_task_arenas_are_separate(self, heap, tm):
        t1 = tm.kernel.create_task(tm.process, 0)
        t2 = tm.kernel.create_task(tm.process, 1)
        a = heap.malloc(t1, 256)
        b = heap.malloc(t2, 256)
        # Different arena chunks entirely.
        assert abs(a - b) >= ARENA_CHUNK - 256


class TestLargeAllocations:
    def test_large_gets_own_mapping(self, heap, task):
        va = heap.malloc(task, 1 << 20)
        info = heap.allocation_at(va)
        assert info.vma is not None
        assert info.vma.length >= 1 << 20

    def test_large_free_unmaps(self, heap, task, tm):
        va = heap.malloc(task, 1 << 20)
        vmas_before = len(tm.process.address_space.vmas)
        heap.free(task, va)
        assert len(tm.process.address_space.vmas) == vmas_before - 1


class TestAccounting:
    def test_bytes_allocated(self, heap, task):
        a = heap.malloc(task, 100)
        heap.malloc(task, 200)
        assert heap.bytes_allocated == 300
        heap.free(task, a)
        assert heap.bytes_allocated == 200

    def test_double_free_rejected(self, heap, task):
        va = heap.malloc(task, 64)
        heap.free(task, va)
        with pytest.raises(ValueError):
            heap.free(task, va)

    def test_free_unknown_rejected(self, heap, task):
        with pytest.raises(ValueError):
            heap.free(task, 0x1234)

    def test_live_count(self, heap, task):
        vas = [heap.malloc(task, 32) for _ in range(5)]
        assert heap.live_allocations() == 5
        for va in vas:
            heap.free(task, va)
        assert heap.live_allocations() == 0


class TestColoringIntegration:
    def test_small_objects_inherit_toucher_colors(self, tm):
        """malloc itself is color-oblivious; the page faulted by a colored
        thread carries its colors."""
        th = tm.spawn_thread(core=0)
        th.set_colors(mem=[4])
        va = th.malloc(64)
        paddr = th.touch(va)
        assert int(tm.kernel.pool.bank_color[paddr >> 12]) == 4
