"""Unit tests for the L1/L2/LLC hierarchy over the DRAM model."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, CacheTiming, MemoryLevel
from repro.dram.system import DramSystem


@pytest.fixture
def setup(tiny):
    dram = DramSystem(tiny.mapping, tiny.topology)
    return tiny, dram, CacheHierarchy(tiny.topology, dram)


class TestLevels:
    def test_cold_access_goes_to_dram(self, setup):
        _, dram, h = setup
        r = h.access(0x1000, core=0, now=0.0)
        assert r.level is MemoryLevel.DRAM
        assert r.dram is not None
        assert dram.stats.accesses == 1

    def test_second_access_hits_l1(self, setup):
        _, _, h = setup
        h.access(0x1000, 0, 0.0)
        r = h.access(0x1000, 0, 100.0)
        assert r.level is MemoryLevel.L1
        assert r.latency == h.timing.l1_hit

    def test_same_line_different_offset_hits(self, setup):
        tiny, _, h = setup
        h.access(0x1000, 0, 0.0)
        r = h.access(0x1000 + tiny.mapping.line_bytes - 1, 0, 100.0)
        assert r.level is MemoryLevel.L1

    def test_other_core_misses_private_hits_llc(self, setup):
        _, _, h = setup
        h.access(0x1000, core=0, now=0.0)
        r = h.access(0x1000, core=1, now=100.0)
        assert r.level is MemoryLevel.LLC

    def test_latency_ordering(self, setup):
        _, _, h = setup
        dram_r = h.access(0x2000, 0, 0.0)
        l1_r = h.access(0x2000, 0, 1000.0)
        llc_r = h.access(0x2000, 1, 2000.0)
        assert l1_r.latency < llc_r.latency < dram_r.latency


class TestL2Path:
    def test_l1_capacity_falls_to_l2(self, setup):
        tiny, _, h = setup
        line = tiny.mapping.line_bytes
        n_l1_lines = tiny.topology.l1.num_lines
        # Touch enough distinct lines to overflow L1 but not L2.
        for i in range(n_l1_lines * 2):
            h.access(i * line, 0, float(i) * 1000)
        r = h.access(0, 0, 1e9)
        assert r.level in (MemoryLevel.L2, MemoryLevel.L1)
        stats = h.level_stats()
        assert stats["l2"].hits > 0


class TestWritebacks:
    def test_dirty_llc_eviction_writes_back(self, tiny):
        dram = DramSystem(tiny.mapping, tiny.topology)
        h = CacheHierarchy(tiny.topology, dram)
        line = tiny.mapping.line_bytes
        llc_lines = tiny.topology.llc.num_lines
        # Write far more lines than the LLC holds -> dirty evictions.
        for i in range(llc_lines * 2):
            h.access(i * line, 0, float(i) * 100, is_write=True)
        assert dram.stats.writebacks > 0

    def test_clean_evictions_do_not_write_back(self, tiny):
        dram = DramSystem(tiny.mapping, tiny.topology)
        h = CacheHierarchy(tiny.topology, dram)
        line = tiny.mapping.line_bytes
        for i in range(tiny.topology.llc.num_lines * 2):
            h.access(i * line, 0, float(i) * 100, is_write=False)
        assert dram.stats.writebacks == 0


class TestStats:
    def test_level_stats_rollup(self, setup):
        _, _, h = setup
        h.access(0x100, 0, 0.0)
        h.access(0x100, 0, 10.0)
        stats = h.level_stats()
        assert stats["l1"].hits == 1
        assert stats["l1"].misses == 1
        assert stats["llc"].misses == 1

    def test_core_stats(self, setup):
        _, _, h = setup
        h.access(0x100, 2, 0.0)
        assert h.core_stats(2)["l1"].misses == 1
        assert h.core_stats(0)["l1"].accesses == 0

    def test_reset(self, setup):
        _, _, h = setup
        h.access(0x100, 0, 0.0)
        h.reset()
        stats = h.level_stats()
        assert stats["l1"].accesses == 0
        assert h.llc.occupancy() == 0


class TestCacheTiming:
    def test_ordering_validated(self):
        with pytest.raises(ValueError):
            CacheTiming(l1_hit=10.0, l2_hit=5.0)
