"""Unit tests for size parsing/formatting."""

import pytest

from repro.util.units import GIB, KIB, MIB, format_size, parse_size


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4KB", 4 * KIB),
            ("4kib", 4 * KIB),
            ("12MiB", 12 * MIB),
            ("2g", 2 * GIB),
            ("512", 512),
            ("0b", 0),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    def test_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_whitespace(self):
        assert parse_size("  8 MB ".replace(" ", "")) == 8 * MIB

    def test_unknown_suffix(self):
        with pytest.raises(ValueError):
            parse_size("4xb")

    def test_no_number(self):
        with pytest.raises(ValueError):
            parse_size("MB")


class TestFormatSize:
    def test_bytes(self):
        assert format_size(17) == "17B"

    def test_kib(self):
        assert format_size(4 * KIB) == "4.0KiB"

    def test_mib(self):
        assert format_size(12 * MIB) == "12.0MiB"

    def test_roundtrip_order(self):
        assert "GiB" in format_size(3 * GIB)
