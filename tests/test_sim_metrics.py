"""Unit tests for RunMetrics/ThreadMetrics roll-ups."""


from repro.sim.metrics import RunMetrics, ThreadMetrics


def metrics_with(runtimes, idles):
    m = RunMetrics(name="x", policy="buddy", nthreads=len(runtimes))
    m.threads = [
        ThreadMetrics(thread=i, core=i, parallel_runtime=rt, idle_time=idle)
        for i, (rt, idle) in enumerate(zip(runtimes, idles))
    ]
    return m


class TestRollups:
    def test_total_idle(self):
        m = metrics_with([1.0, 2.0], [3.0, 4.0])
        assert m.total_idle == 7.0

    def test_spread(self):
        m = metrics_with([1.0, 4.0, 2.0], [0, 0, 0])
        assert m.runtime_spread == 3.0
        assert m.max_thread_runtime == 4.0
        assert m.min_thread_runtime == 1.0

    def test_max_thread_idle(self):
        m = metrics_with([1.0], [9.0])
        assert m.max_thread_idle == 9.0

    def test_empty_threads(self):
        m = RunMetrics(name="x", policy="buddy", nthreads=0)
        assert m.total_idle == 0.0
        assert m.runtime_spread == 0.0

    def test_remote_fraction(self):
        m = metrics_with([1.0, 1.0], [0, 0])
        m.threads[0].dram_accesses = 10
        m.threads[0].remote_accesses = 5
        m.threads[1].dram_accesses = 10
        assert m.remote_fraction == 0.25

    def test_thread_remote_fraction_zero_division(self):
        t = ThreadMetrics(thread=0, core=0)
        assert t.remote_fraction == 0.0

    def test_summary_keys(self):
        m = metrics_with([1.0, 2.0], [0.5, 0.0])
        s = m.summary()
        for key in ("runtime", "total_idle", "runtime_spread",
                    "max_thread_idle", "remote_fraction",
                    "total_faults", "total_fault_ns", "barriers"):
            assert key in s

    def test_summary_fault_rollups(self):
        m = metrics_with([1.0, 2.0], [0.0, 0.0])
        m.threads[0].faults = 3
        m.threads[0].fault_ns = 450.0
        m.threads[1].faults = 2
        m.threads[1].fault_ns = 300.0
        m.barriers = 4
        s = m.summary()
        assert s["total_faults"] == 5
        assert s["total_fault_ns"] == 750.0
        assert s["barriers"] == 4
        assert m.total_faults == 5
        assert m.total_fault_ns == 750.0

    def test_lists(self):
        m = metrics_with([1.0, 2.0], [0.5, 0.0])
        assert m.thread_runtimes() == [1.0, 2.0]
        assert m.thread_idles() == [0.5, 0.0]
