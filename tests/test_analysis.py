"""Unit tests for aggregation statistics and terminal charts."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.charts import bar_chart, grouped_bar_chart, series_table
from repro.analysis.stats import Aggregate, aggregate, mean, normalize_to


class TestAggregate:
    def test_basic(self):
        a = aggregate([1.0, 2.0, 3.0])
        assert a.mean == 2.0
        assert (a.min, a.max, a.n) == (1.0, 3.0, 3)
        assert a.spread == 2.0

    def test_single_value(self):
        a = aggregate([5.0])
        assert a.mean == a.min == a.max == 5.0
        assert a.spread == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_normalize(self):
        a = normalize_to(aggregate([2.0, 4.0]), base=2.0)
        assert a.mean == 1.5
        assert a.min == 1.0

    def test_normalize_bad_base(self):
        with pytest.raises(ValueError):
            normalize_to(aggregate([1.0]), 0.0)

    def test_mean_helper(self):
        assert mean([1.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    @given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=50))
    def test_bounds_property(self, values):
        a = aggregate(values)
        assert a.min <= a.mean <= a.max


class TestCharts:
    def test_bar_chart_contains_labels_and_values(self):
        out = bar_chart("title", {"buddy": aggregate([1.0]),
                                  "mem+llc": aggregate([0.7, 0.8])})
        assert "title" in out
        assert "buddy" in out and "mem+llc" in out
        assert "0.750" in out  # mean of 0.7/0.8
        assert "[0.700 .. 0.800]" in out  # whisker

    def test_bar_chart_empty(self):
        assert "no data" in bar_chart("t", {})

    def test_grouped_chart(self):
        groups = {
            "lbm": {"buddy": aggregate([1.0]), "mem+llc": aggregate([0.7])},
            "art": {"buddy": aggregate([1.0])},
        }
        out = grouped_bar_chart("fig", groups)
        assert "lbm" in out and "art" in out
        assert out.count("buddy") == 2

    def test_series_table_alignment(self):
        out = series_table("t", ["t0", "t1"], {"buddy": [1.0, 2.0]})
        lines = out.splitlines()
        assert "t0" in lines[1] and "buddy" in lines[2]
