"""Unit tests for the execution engine: barriers, idle time, determinism."""

import numpy as np
import pytest

from repro.alloc.policies import Policy
from repro.core.session import ColoredTeam
from repro.core.tintmalloc import TintMalloc
from repro.kernel.kernel import Kernel
from repro.machine.presets import tiny_machine
from repro.sim.barrier import Program, Section
from repro.sim.engine import Engine, MemorySystem
from repro.sim.trace import Trace


def build_env(policy=Policy.BUDDY, cores=(0, 1, 2, 3)):
    machine = tiny_machine()
    kernel = Kernel(machine)
    tm = TintMalloc(kernel=kernel)
    team = ColoredTeam.create(tm, list(cores), policy)
    memory = MemorySystem.for_machine(machine)
    return tm, team, Engine(team, memory)


def trace_over(handle, nbytes, think=1.0, write=False):
    base = handle.malloc(nbytes)
    n = nbytes // 64
    return Trace(
        vaddrs=base + np.arange(n, dtype=np.int64) * 64,
        writes=np.full(n, write, dtype=bool),
        think_ns=think,
    )


class TestBarriers:
    def test_idle_is_max_minus_end(self):
        """Algorithm 3: idle[tid] = max(end) - end[tid]."""
        tm, team, engine = build_env()
        # Thread 1 does twice the work of thread 0.
        t0 = trace_over(team.handles[0], 16 * 1024)
        t1 = trace_over(team.handles[1], 32 * 1024)
        program = Program(
            sections=[Section("parallel", {0: t0, 1: t1})], nthreads=4
        )
        m = engine.run(program)
        assert m.threads[1].idle_time == pytest.approx(0.0)
        assert m.threads[0].idle_time > 0
        assert m.threads[0].idle_time == pytest.approx(
            m.threads[1].parallel_runtime - m.threads[0].parallel_runtime,
            rel=0.01,
        )

    def test_balanced_threads_little_idle(self):
        tm, team, engine = build_env()
        traces = {
            i: trace_over(team.handles[i], 16 * 1024) for i in range(4)
        }
        program = Program([Section("parallel", traces)], nthreads=4)
        m = engine.run(program)
        assert m.total_idle < 0.2 * m.parallel_runtime * 4

    def test_serial_section_advances_wall_only(self):
        tm, team, engine = build_env()
        serial = trace_over(team.handles[0], 8 * 1024, think=10.0)
        program = Program([Section("serial", {0: serial})], nthreads=4)
        m = engine.run(program)
        assert m.serial_runtime > 0
        assert m.parallel_runtime == 0
        assert m.total_idle == 0
        assert m.barriers == 0

    def test_sections_accumulate(self):
        tm, team, engine = build_env()
        sections = []
        for _ in range(3):
            traces = {i: trace_over(team.handles[i], 4 * 1024) for i in range(2)}
            sections.append(Section("parallel", traces))
        program = Program(sections, nthreads=4)
        m = engine.run(program)
        assert m.barriers == 3
        assert m.runtime == pytest.approx(m.parallel_runtime)


class TestAccounting:
    def test_access_and_fault_counts(self):
        tm, team, engine = build_env()
        t0 = trace_over(team.handles[0], 16 * 1024)
        program = Program([Section("parallel", {0: t0})], nthreads=4)
        m = engine.run(program)
        assert m.threads[0].accesses == len(t0)
        assert m.threads[0].faults == 4  # 16 KiB = 4 pages

    def test_dram_stats_attached(self):
        tm, team, engine = build_env()
        t0 = trace_over(team.handles[0], 16 * 1024)
        m = engine.run(Program([Section("parallel", {0: t0})], nthreads=4))
        assert m.dram is not None and m.dram.accesses > 0
        assert "llc" in m.cache

    def test_wrong_team_size_rejected(self):
        tm, team, engine = build_env()
        program = Program([], nthreads=2)
        with pytest.raises(ValueError):
            engine.run(program)


class TestDeterminism:
    def test_same_setup_same_result(self):
        results = []
        for _ in range(2):
            tm, team, engine = build_env(policy=Policy.MEM_LLC)
            traces = {
                i: trace_over(team.handles[i], 32 * 1024, write=True)
                for i in range(4)
            }
            program = Program([Section("parallel", traces)], nthreads=4)
            results.append(engine.run(program))
        assert results[0].runtime == results[1].runtime
        assert results[0].thread_idles() == results[1].thread_idles()

    def test_policies_change_behaviour(self):
        runtimes = {}
        for policy in (Policy.BUDDY, Policy.MEM_LLC):
            tm, team, engine = build_env(policy=policy)
            traces = {
                i: trace_over(team.handles[i], 64 * 1024, write=True)
                for i in range(4)
            }
            program = Program([Section("parallel", traces)], nthreads=4)
            runtimes[policy] = engine.run(program).runtime
        assert runtimes[Policy.BUDDY] != runtimes[Policy.MEM_LLC]


class TestContention:
    def test_shared_bank_interference_visible(self):
        """Two threads hammering the same physical pages (same banks) are
        slower than two threads on disjoint banks."""
        tm, team, engine = build_env(policy=Policy.MEM)
        # Disjoint: each thread its own (colored, private-bank) buffer.
        traces = {
            i: trace_over(team.handles[i], 64 * 1024, write=True)
            for i in range(2)
        }
        disjoint = engine.run(
            Program([Section("parallel", traces)], nthreads=4)
        ).parallel_runtime

        tm2, team2, engine2 = build_env(policy=Policy.BUDDY)
        shared_base = team2.handles[0].malloc(64 * 1024)
        n = 64 * 1024 // 64
        shared_traces = {
            i: Trace(
                vaddrs=shared_base + np.arange(n, dtype=np.int64) * 64,
                writes=np.ones(n, dtype=bool),
                think_ns=1.0,
            )
            for i in range(2)
        }
        # Interleave differently per thread to defeat co-hit timing.
        shared_traces[1] = Trace(
            vaddrs=shared_traces[1].vaddrs[::-1].copy(),
            writes=np.ones(n, dtype=bool),
            think_ns=1.0,
        )
        shared = engine2.run(
            Program([Section("parallel", shared_traces)], nthreads=4)
        ).parallel_runtime
        assert shared > disjoint
