"""Differential oracle tests: agreement, injected drift, analytic model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc.policies import Policy
from repro.core.session import ColoredTeam
from repro.core.tintmalloc import TintMalloc
from repro.kernel.kernel import Kernel
from repro.machine.presets import tiny_machine
from repro.sanitize import SanitizeViolation
from repro.sanitize.diff import (
    DiffReport,
    FieldDiff,
    analytic_violations,
    diff_trees,
    differential_benchmark,
    differential_run,
    flatten_tree,
    metrics_snapshot,
)
from repro.sim.barrier import Program, Section
from repro.sim.engine import Engine, MemorySystem
from repro.sim.trace import Trace
from repro.util.units import KIB, MIB


def _builder_factory(extra_accesses_for_call=()):
    """A fresh tiny environment per call; selected calls get a longer
    trace (simulating one engine path drifting from the others)."""
    calls = {"n": 0}

    def builder(observer):
        call = calls["n"]
        calls["n"] += 1
        machine = tiny_machine(8 * MIB)
        kwargs = {"observer": observer}
        kernel = Kernel(machine, aged=True, age_seed=3, **kwargs)
        tm = TintMalloc(kernel=kernel)
        team = ColoredTeam.create(tm, [0], Policy.MEM_LLC)
        memory = MemorySystem.for_machine(machine, **kwargs)
        engine = Engine(team, memory, **kwargs)
        va = team.handles[0].malloc(16 * KIB, label="region")
        n = 256 + (64 if call in extra_accesses_for_call else 0)
        vaddrs = va + (np.arange(n, dtype=np.int64) % 256) * 64
        trace = Trace(vaddrs=vaddrs, writes=np.zeros(n, dtype=bool),
                      think_ns=2.0, label="t")
        program = Program(
            sections=[Section(kind="parallel", traces={0: trace}, label="c")],
            nthreads=1, name="diff-test",
        )
        return engine, program

    return builder


class TestFlattenAndDiff:
    def test_flatten_tree_paths(self):
        flat = flatten_tree({"a": {"b": 1}, "c": [2, {"d": 3}]})
        assert flat == {"a.b": 1, "c[0]": 2, "c[1].d": 3}

    def test_diff_trees_finds_first_divergence(self):
        snaps = {
            "fast": {"x": 1, "y": {"z": 2}},
            "reference": {"x": 1, "y": {"z": 3}},
        }
        first, divergent, total = diff_trees(snaps)
        assert total == 1
        assert first.path == "y.z"
        assert first.values == {"fast": 2, "reference": 3}

    def test_diff_trees_missing_leaf(self):
        snaps = {"fast": {"x": 1, "extra": 9}, "reference": {"x": 1}}
        first, _, total = diff_trees(snaps)
        assert total == 1
        assert first.values["reference"] == "<missing>"

    def test_report_raise_on_divergence(self):
        report = DiffReport(
            modes=("fast", "reference"), equal=False,
            first=FieldDiff("dram.accesses", {"fast": 1, "reference": 2}),
            total_divergent=1,
        )
        with pytest.raises(SanitizeViolation) as exc:
            report.raise_on_divergence()
        assert exc.value.layer == "diff"
        assert exc.value.invariant == "engine-divergence"
        assert "dram.accesses" in str(exc.value)


class TestDifferentialRun:
    def test_paths_agree_on_healthy_engine(self):
        report = differential_run(_builder_factory())
        assert report.modes == ("fast", "reference", "traced")
        assert report.clean, report.describe()
        report.raise_on_divergence()  # no-op when clean

    def test_injected_fast_path_drift_is_caught(self):
        # Call 0 is the fast path: give it 64 extra accesses, as if the
        # batched loop replayed work the reference loop does not see.
        report = differential_run(_builder_factory(extra_accesses_for_call={0}))
        assert not report.equal
        assert report.total_divergent > 0
        assert report.first is not None
        with pytest.raises(SanitizeViolation):
            report.raise_on_divergence()

    def test_benchmark_oracle_clean(self):
        report = differential_benchmark("lbm", Policy.MEM_LLC)
        assert report.clean, report.describe()


class TestAnalyticModel:
    def _metrics(self):
        builder = _builder_factory()
        engine, program = builder(__import__(
            "repro.obs.observer", fromlist=["NULL_OBSERVER"]
        ).NULL_OBSERVER)
        return engine.run(program)

    def test_healthy_run_satisfies_model(self):
        assert analytic_violations(self._metrics()) == []

    def test_drifted_dram_counter_violates_model(self):
        metrics = self._metrics()
        metrics.dram.accesses += 1
        violations = analytic_violations(metrics)
        assert violations
        assert any("accesses" in v for v in violations)

    def test_barrier_miscount_violates_model(self):
        metrics = self._metrics()
        metrics.barriers += 1
        assert any("barriers" in v for v in analytic_violations(metrics))

    def test_snapshot_is_json_like(self):
        snap = metrics_snapshot(self._metrics())
        flat = flatten_tree(snap)
        assert "runtime" in flat
        assert any(path.startswith("dram.") for path in flat)
