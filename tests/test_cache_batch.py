"""Element-wise pins of ``repro.cache.batch`` kernels to scalar Cache.

Each batch kernel mirrors a scalar method (named in its docstring); the
engine's batched replay is only bit-identical if these agree on every
element, so the tests compare them directly rather than re-deriving the
math.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.batch import cold_miss_mask, set_index_batch
from repro.cache.cache import Cache
from repro.machine.topology import CacheGeometry

LINE_ADDRS = st.lists(
    st.integers(min_value=0, max_value=(1 << 40) - 1), min_size=1, max_size=128
)


def _geometry(num_sets: int, ways: int = 4) -> CacheGeometry:
    return CacheGeometry(
        size_bytes=num_sets * ways * 64, ways=ways, line_bytes=64
    )


class TestSetIndexBatch:
    @settings(max_examples=60, deadline=None)
    @given(lines=LINE_ADDRS, sets_log2=st.integers(min_value=1, max_value=12),
           hashed=st.booleans())
    def test_matches_scalar_set_of_line(self, lines, sets_log2, hashed):
        geom = _geometry(1 << sets_log2)
        cache = Cache(geom, hash_index=hashed)
        got = set_index_batch(
            np.asarray(lines, dtype=np.int64),
            geom.index_bits,
            geom.num_sets - 1,
            hashed,
        )
        for line, idx in zip(lines, got.tolist()):
            assert idx == cache.set_of_line(line)

    def test_empty(self):
        got = set_index_batch(np.asarray([], dtype=np.int64), 4, 15, True)
        assert got.size == 0


class TestColdMissMask:
    @settings(max_examples=60, deadline=None)
    @given(lines=LINE_ADDRS)
    def test_marks_exactly_first_occurrences(self, lines):
        mask = cold_miss_mask(np.asarray(lines, dtype=np.int64))
        seen: set[int] = set()
        for line, flag in zip(lines, mask.tolist()):
            assert flag == (line not in seen)
            seen.add(line)

    def test_empty(self):
        assert cold_miss_mask(np.asarray([], dtype=np.int64)).size == 0

    def test_all_unique(self):
        assert cold_miss_mask(np.asarray([3, 1, 2], dtype=np.int64)).all()
