"""Golden-metrics regression tests: pinned digests of real runs.

Each golden entry pins the sha256 of the *complete* canonicalised
RunMetrics tree of one mini-profile fig. 10 / fig. 11 run, plus a few
headline fields so a failure is readable without re-deriving anything.
Any behaviour change anywhere in the stack — kernel placement, cache
replacement, DRAM timing, engine scheduling — changes the digest.

When a change is *intentional*, refresh the fixtures and review the
headline-field diff::

    PYTHONPATH=src python -m pytest tests/test_golden_metrics.py \
        --update-golden

An unintentional digest change means simulation semantics drifted; use
``repro.sanitize.diff.metrics_snapshot`` on old/new checkouts to find
the first divergent field.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.alloc.policies import Policy
from repro.experiments.configs import CONFIGS
from repro.experiments.runner import (
    _fresh_environment,
    profile_machine,
    profile_scale,
)
from repro.experiments.matrix import headline_config
from repro.machine.presets import platform
from repro.sanitize.diff import metrics_snapshot
from repro.util.rng import RngStream
from repro.util.units import MIB
from repro.workloads.base import build_spmd_program
from repro.workloads.registry import get_workload
from repro.workloads.synthetic import SyntheticSpec, build_synthetic_program

GOLDEN_PATH = Path(__file__).parent / "golden" / "metrics.json"
CONFIG = "16_threads_4_nodes"
PROFILE = "mini"

#: The new platform-family presets pinned alongside the Opteron runs
#: (each at mini memory/scale, headline all-cores config).
GOLDEN_PLATFORMS = ("modern_8ch", "bigbank_4n", "disagg_2n")


def _run_fig11(bench: str, policy: Policy):
    team, engine = _fresh_environment(
        CONFIGS[CONFIG], policy, profile_machine(PROFILE), age_seed=0
    )
    spec = get_workload(bench).scaled(profile_scale(PROFILE))
    program = build_spmd_program(spec, team, RngStream(0, bench, CONFIG))
    return engine.run(program)


def _run_platform(preset: str, bench: str, policy: Policy):
    machine = platform(preset, 256 * MIB)
    config = headline_config(machine)
    team, engine = _fresh_environment(config, policy, machine, age_seed=0)
    spec = get_workload(bench).scaled(profile_scale(PROFILE))
    program = build_spmd_program(spec, team, RngStream(0, bench, config.name))
    return engine.run(program)


def _run_fig10(policy: Policy):
    team, engine = _fresh_environment(
        CONFIGS[CONFIG], policy, profile_machine(PROFILE), age_seed=0
    )
    program = build_synthetic_program(
        SyntheticSpec(per_thread_bytes=64 * 1024), team
    )
    return engine.run(program)


#: name -> zero-arg runner producing the RunMetrics to pin.
GOLDEN_RUNS = {
    "fig10_synthetic_buddy": lambda: _run_fig10(Policy.BUDDY),
    "fig10_synthetic_mem_llc": lambda: _run_fig10(Policy.MEM_LLC),
    "fig11_lbm_buddy": lambda: _run_fig11("lbm", Policy.BUDDY),
    "fig11_lbm_mem_llc": lambda: _run_fig11("lbm", Policy.MEM_LLC),
    "fig11_blackscholes_mem_llc":
        lambda: _run_fig11("blackscholes", Policy.MEM_LLC),
}
for _preset in GOLDEN_PLATFORMS:
    for _policy in (Policy.BUDDY, Policy.MEM_LLC):
        GOLDEN_RUNS[f"platform_{_preset}_lbm_{_policy.name.lower()}"] = (
            lambda p=_preset, pol=_policy: _run_platform(p, "lbm", pol)
        )


def _canonical(tree) -> str:
    """Deterministic JSON: sorted keys, exact float repr, no whitespace."""
    return json.dumps(tree, sort_keys=True, separators=(",", ":"))


def digest_metrics(metrics) -> dict:
    """The pinned form: full-tree sha256 + human-readable headline."""
    snap = metrics_snapshot(metrics)
    return {
        "sha256": hashlib.sha256(_canonical(snap).encode()).hexdigest(),
        "headline": {
            "runtime": metrics.runtime,
            "dram_accesses": metrics.dram.accesses if metrics.dram else 0,
            "llc_misses": metrics.cache["llc"].misses,
            "remote_fraction": metrics.remote_fraction,
            "faults": sum(t.faults for t in metrics.threads),
        },
    }


def _load_golden() -> dict:
    if not GOLDEN_PATH.exists():
        return {}
    return json.loads(GOLDEN_PATH.read_text())


def _store_golden(name: str, digest: dict) -> None:
    golden = _load_golden()
    golden[name] = digest
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(golden, indent=2, sort_keys=True) + "\n"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_RUNS))
def test_golden_metrics(name, update_golden):
    digest = digest_metrics(GOLDEN_RUNS[name]())
    if update_golden:
        _store_golden(name, digest)
        return
    golden = _load_golden()
    assert name in golden, (
        f"no golden entry for {name!r}; run with --update-golden to create"
    )
    expected = golden[name]
    assert digest["headline"] == expected["headline"], (
        f"{name}: headline metrics drifted (see field diff above); if "
        f"intentional, refresh with --update-golden"
    )
    assert digest["sha256"] == expected["sha256"], (
        f"{name}: full metrics tree drifted although headline fields "
        f"match — some deeper field changed; diff metrics_snapshot() "
        f"between checkouts, then --update-golden if intentional"
    )


def test_golden_file_has_no_orphans():
    """Every pinned entry must correspond to a runnable golden run."""
    orphans = set(_load_golden()) - set(GOLDEN_RUNS)
    assert not orphans, f"golden entries without runners: {sorted(orphans)}"
