"""Unit tests for the DRAM system facade and interconnect."""

import pytest

from repro.dram.bank import RowKind
from repro.dram.interconnect import Interconnect
from repro.dram.system import DramSystem
from repro.dram.timing import DramTiming

T = DramTiming()


@pytest.fixture
def system(tiny):
    return DramSystem(tiny.mapping, tiny.topology, T)


def addr_on(mapping, node, bank=0, rest=0):
    return mapping.compose(node, 0, 0, bank, rest)


class TestLocality:
    def test_local_cheaper_than_remote(self, tiny, system):
        local = addr_on(tiny.mapping, node=0)
        remote = addr_on(tiny.mapping, node=1)
        r_local = system.access(local, core=0, now=0.0)
        r_remote = system.access(remote, core=0, now=10_000.0)
        assert r_local.hops == 0
        assert r_remote.hops == 1
        assert r_remote.latency > r_local.latency

    def test_remote_penalty_is_round_trip(self, tiny, system):
        remote = addr_on(tiny.mapping, node=1)
        r = system.access(remote, core=0, now=0.0)
        local_equiv = system.access(
            addr_on(tiny.mapping, node=0), core=0, now=50_000.0
        )
        expected_extra = 2 * T.hop_latency  # same socket, one hop each way
        assert r.latency - local_equiv.latency == pytest.approx(expected_extra)

    def test_stats_track_remote_fraction(self, tiny, system):
        system.access(addr_on(tiny.mapping, 0), core=0, now=0.0)
        system.access(addr_on(tiny.mapping, 1), core=0, now=1000.0)
        assert system.stats.local_accesses == 1
        assert system.stats.remote_accesses == 1
        assert system.stats.remote_fraction == 0.5


class TestBankBehaviour:
    def test_row_hit_within_page(self, tiny, system):
        base = addr_on(tiny.mapping, 0)
        system.access(base, 0, 0.0)
        r = system.access(base + 64, 0, 1000.0)
        assert r.row_kind is RowKind.HIT

    def test_conflict_across_pages_same_bank(self, tiny, system):
        mapping = tiny.mapping
        a = mapping.compose(0, 0, 0, 0, 0)
        # Same bank, different row: bump a free (non-field) frame bit.
        b = None
        for rest in range(1, 64):
            cand = mapping.compose(0, 0, 0, 0, rest << 12)
            if mapping.row_of(cand) != mapping.row_of(a):
                b = cand
                break
        assert b is not None
        system.access(a, 0, 0.0)
        r = system.access(b, 0, 1000.0)
        assert r.row_kind is RowKind.CONFLICT

    def test_different_banks_independent(self, tiny, system):
        a = addr_on(tiny.mapping, 0, bank=0)
        b = addr_on(tiny.mapping, 0, bank=1)
        system.access(a, 0, 0.0)
        r = system.access(b, 0, 1.0)
        # New bank: closed miss, not conflict.
        assert r.row_kind is RowKind.MISS

    def test_writeback_counts(self, tiny, system):
        system.writeback(addr_on(tiny.mapping, 0), now=0.0)
        assert system.stats.writebacks == 1


class TestQueueWaits:
    def test_contention_raises_queue_wait(self, tiny, system):
        addr = addr_on(tiny.mapping, 0)
        first = system.access(addr, 0, 0.0)
        second = system.access(addr + 64, 1, 0.0)
        assert first.queue_wait == 0.0
        assert second.queue_wait > 0.0

    def test_wait_components_sum(self, tiny, system):
        for i in range(10):
            system.access(addr_on(tiny.mapping, 0) + 64 * i, 0, 0.0)
        s = system.stats
        total = s.wait_link + s.wait_ctrl + s.wait_chan + s.wait_bank
        assert total == pytest.approx(s.total_queue_wait)


class TestReset:
    def test_reset_clears_everything(self, tiny, system):
        system.access(addr_on(tiny.mapping, 0), 0, 0.0)
        system.writeback(addr_on(tiny.mapping, 1), 0.0)
        system.reset()
        assert system.stats.accesses == 0
        assert system.stats.writebacks == 0
        assert all(b.open_row is None for b in system.banks)
        r = system.access(addr_on(tiny.mapping, 0), 0, 0.0)
        assert r.queue_wait == 0.0


class TestInterconnect:
    def test_local_passthrough(self, tiny):
        ic = Interconnect(tiny.topology, T)
        arrival, hops = ic.traverse(core=0, node=0, now=123.0)
        assert (arrival, hops) == (123.0, 0)
        assert ic.remote_transfers == 0

    def test_remote_adds_propagation(self, tiny):
        ic = Interconnect(tiny.topology, T)
        arrival, hops = ic.traverse(core=0, node=1, now=0.0)
        assert hops == 1
        assert arrival == pytest.approx(T.hop_latency)

    def test_link_queueing(self, tiny):
        ic = Interconnect(tiny.topology, T)
        a1, _ = ic.traverse(0, 1, 0.0)
        a2, _ = ic.traverse(0, 1, 0.0)  # same directed path, same instant
        assert a2 == pytest.approx(a1 + T.link_service)

    def test_cross_socket_factor(self):
        spec = __import__("repro.machine.presets", fromlist=["opteron_6128"]).opteron_6128()
        ic = Interconnect(spec.topology, T)
        same_socket, _ = ic.traverse(0, 1, 0.0)
        cross_socket, _ = ic.traverse(0, 2, 0.0)
        # 2 hops * factor 2 vs 1 hop * factor 1.
        assert cross_socket == pytest.approx(same_socket * 4)
