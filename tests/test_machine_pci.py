"""Unit tests for the PCI register file and the boot-time mapping probe."""

import pytest

from repro.machine.address import AddressMapping, contiguous
from repro.machine.pci import (
    REG_DRAM_BASE,
    REG_ID,
    PciConfigSpace,
    encode_config_space,
    probe_address_mapping,
)
from repro.machine.presets import opteron_6128, tiny_machine


class TestRegisterFile:
    def test_read_write(self):
        pci = PciConfigSpace()
        pci.write32(0x40, 0xDEAD)
        assert pci.read32(0x40) == 0xDEAD

    def test_unwritten_reads_zero(self):
        assert PciConfigSpace().read32(0x80) == 0

    def test_unaligned_rejected(self):
        pci = PciConfigSpace()
        with pytest.raises(ValueError):
            pci.read32(0x41)
        with pytest.raises(ValueError):
            pci.write32(0x42, 1)

    def test_oversized_value_rejected(self):
        with pytest.raises(ValueError):
            PciConfigSpace().write32(0x40, 1 << 32)


class TestProbeRoundtrip:
    @pytest.mark.parametrize("factory", [opteron_6128, tiny_machine])
    def test_probe_reconstructs_mapping(self, factory):
        spec = factory()
        probed = probe_address_mapping(spec.pci)
        assert probed == spec.mapping

    def test_scattered_bank_bits_roundtrip(self):
        # The paper's Fig. 5 has non-contiguous bank bits; the CS/bank
        # registers must carry them faithfully.
        mapping = AddressMapping(
            total_bits=30, line_bits=7, page_bits=12,
            fields={
                "node": contiguous(28, 2),
                "channel": contiguous(23, 1),
                "rank": contiguous(22, 1),
                "bank": (15, 16, 18),  # paper's literal bank bits
            },
            llc_color_positions=contiguous(12, 5),
            row_bits_start=12,
        )
        pci = encode_config_space(mapping)
        assert probe_address_mapping(pci) == mapping


class TestProbeRejections:
    def test_wrong_vendor(self):
        pci = PciConfigSpace()
        pci.write32(REG_ID, 0x8086 << 16)  # the vendor that won't tell
        with pytest.raises(RuntimeError, match="vendor"):
            probe_address_mapping(pci)

    def test_divergent_node_registers(self):
        spec = tiny_machine()
        pci = PciConfigSpace(dict(spec.pci.registers))
        base0 = pci.read32(REG_DRAM_BASE)
        pci.write32(REG_DRAM_BASE + 4, base0 ^ 1)
        with pytest.raises(RuntimeError, match="divergent"):
            probe_address_mapping(pci)

    def test_non_contiguous_node_field_unencodable(self):
        mapping = AddressMapping(
            total_bits=30, line_bits=6, page_bits=12,
            fields={
                "node": (20, 25),  # scattered node bits
                "channel": (21,), "rank": (22,), "bank": (23,),
            },
            llc_color_positions=(12, 13),
        )
        with pytest.raises(ValueError, match="contiguous"):
            encode_config_space(mapping)
