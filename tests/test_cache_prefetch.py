"""Unit tests for the stride prefetcher and its hierarchy integration."""


from repro.cache.hierarchy import CacheHierarchy, MemoryLevel
from repro.cache.prefetch import StridePrefetcher
from repro.dram.system import DramSystem
from repro.machine.presets import tiny_machine
from repro.workloads.synthetic import alternating_stride_lines


class TestStrideDetector:
    def test_no_prefetch_on_first_accesses(self):
        pf = StridePrefetcher()
        assert pf.observe(100) == []
        assert pf.observe(101) == []  # stride seen once, not yet confirmed

    def test_confirmed_stride_prefetches_ahead(self):
        pf = StridePrefetcher(depth=2)
        pf.observe(100)
        pf.observe(101)
        assert pf.observe(102) == [103, 104]
        assert pf.issued == 2

    def test_negative_stride(self):
        pf = StridePrefetcher(depth=1)
        for line in (100, 98, 96):
            out = pf.observe(line)
        assert out == [94]

    def test_alternating_pattern_defeats_detector(self):
        """The paper's synthetic pattern (M, M+1, M-1, M+2, M-2, ...)
        never repeats a stride, so nothing is ever prefetched."""
        pf = StridePrefetcher(depth=2)
        for line in alternating_stride_lines(256).tolist():
            assert pf.observe(line) == []
        assert pf.issued == 0

    def test_large_strides_ignored(self):
        pf = StridePrefetcher(depth=1, max_stride_lines=8)
        for line in (0, 100, 200):
            assert pf.observe(line) == []

    def test_reset(self):
        pf = StridePrefetcher()
        for line in (1, 2, 3):
            pf.observe(line)
        pf.reset()
        assert pf.issued == 0
        assert pf.observe(4) == []


class TestHierarchyIntegration:
    def _hierarchy(self, prefetch):
        tiny = tiny_machine()
        dram = DramSystem(tiny.mapping, tiny.topology)
        return tiny, dram, CacheHierarchy(
            tiny.topology, dram, prefetch=prefetch
        )

    def test_sequential_stream_hits_after_warmup(self):
        tiny, dram, h = self._hierarchy(prefetch=True)
        line = tiny.mapping.line_bytes
        levels = []
        for i in range(32):  # one page worth of lines
            r = h.access(i * line, core=0, now=float(i) * 200)
            levels.append(r.level)
        # After the detector locks on, later accesses hit (prefetched).
        assert MemoryLevel.L2 in levels[3:] or MemoryLevel.L1 in levels[3:]
        assert dram.stats.prefetch_fills > 0
        assert h.prefetchers[0].useful > 0

    def test_without_prefetch_all_cold_misses(self):
        tiny, dram, h = self._hierarchy(prefetch=False)
        line = tiny.mapping.line_bytes
        for i in range(32):
            r = h.access(i * line, core=0, now=float(i) * 200)
            assert r.level is MemoryLevel.DRAM
        assert dram.stats.prefetch_fills == 0

    def test_prefetch_never_crosses_page(self):
        tiny, dram, h = self._hierarchy(prefetch=True)
        line = tiny.mapping.line_bytes
        lines_per_page = 4096 // line
        # Stream up to the end of a page.
        for i in range(lines_per_page):
            h.access(i * line, core=0, now=float(i) * 200)
        # Nothing from the next page may be resident.
        next_page_line = (4096) >> h._line_bits
        assert not h.l2[0].contains(next_page_line)
        assert not h.llc.contains(next_page_line)

    def test_alternating_pattern_gets_no_help(self):
        tiny, dram, h = self._hierarchy(prefetch=True)
        line = tiny.mapping.line_bytes
        order = alternating_stride_lines(64)
        for i, idx in enumerate(order.tolist()):
            r = h.access(int(idx) * line, core=0, now=float(i) * 200)
            assert r.level is MemoryLevel.DRAM
        assert dram.stats.prefetch_fills == 0

    def test_reset_clears_prefetch_state(self):
        tiny, dram, h = self._hierarchy(prefetch=True)
        line = tiny.mapping.line_bytes
        for i in range(16):
            h.access(i * line, core=0, now=float(i) * 200)
        h.reset()
        assert h.prefetchers[0].issued == 0
        assert not h._prefetched[0]
