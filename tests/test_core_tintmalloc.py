"""Unit tests for the TintMalloc public API (the paper's usage model)."""

import pytest

from repro.alloc.policies import Policy
from repro.core.coloring import color_capacity, mem_colors_local_to
from repro.core.session import ColoredTeam
from repro.core.tintmalloc import TintMalloc
from repro.kernel.kernel import OutOfColoredMemory
from repro.machine.presets import tiny_machine
from repro.util.units import MIB


class TestUsageModel:
    def test_paper_flow(self, tm):
        """Pin, one-line color setup, plain malloc — frames are colored."""
        th = tm.spawn_thread(core=1)
        th.set_colors(mem=[2, 3], llc=[0, 1])
        buf = th.malloc(64 * 1024)
        th.touch_range(buf, 64 * 1024)
        for bank, llc in th.page_colors(buf, 64 * 1024):
            assert bank in (2, 3)
            assert llc in (0, 1)

    def test_uncolored_thread_first_touch_local(self, tm):
        th = tm.spawn_thread(core=2)  # node 1 on the tiny machine
        buf = th.malloc(32 * 1024)
        th.touch_range(buf, 32 * 1024)
        node = tm.topology.node_of_core(2)
        for pfn in (p >> 12 for p in th.touch_range(buf, 32 * 1024)):
            assert tm.kernel.pool.node_of_frame(pfn) == node

    def test_clear_colors_restores_default(self, tm):
        th = tm.spawn_thread(core=0)
        th.set_colors(mem=[5])
        th.clear_colors()
        assert not th.task.colored
        buf = th.malloc(8 * 4096)
        th.touch_range(buf, 8 * 4096)
        banks = {b for b, _ in th.page_colors(buf, 8 * 4096)}
        assert banks != {5}

    def test_thread_node_property(self, tm):
        assert tm.spawn_thread(core=0).node == 0
        assert tm.spawn_thread(core=3).node == 1

    def test_capacity_budget_enforced(self):
        tm = TintMalloc(machine=tiny_machine(memory_bytes=4 * MIB))
        th = tm.spawn_thread(core=0)
        mem = tm.mapping.compatible_bank_colors(0, node=0)[0]
        th.set_colors(mem=[mem], llc=[0])
        cap = th.capacity()
        buf = th.malloc(cap.bytes + 4096)
        with pytest.raises(OutOfColoredMemory):
            th.touch_range(buf, cap.bytes + 4096)


class TestColorCapacity:
    def test_unconstrained_is_whole_memory(self, tiny):
        cap = color_capacity(tiny.mapping, None, None)
        assert cap.bytes == tiny.mapping.memory_bytes

    def test_compatible_pair(self, tiny):
        mapping = tiny.mapping
        lc = mapping.compatible_llc_colors(0)[0]
        cap = color_capacity(mapping, [0], [lc])
        assert cap.frames == mapping.frames_per_combo()

    def test_incompatible_pair_zero(self, tiny):
        mapping = tiny.mapping
        bad = [
            lc
            for lc in range(mapping.num_llc_colors)
            if not mapping.colors_compatible(0, lc)
        ]
        cap = color_capacity(mapping, [0], bad[:1])
        assert cap.frames == 0

    def test_llc_share(self, tiny):
        cap = color_capacity(
            tiny.mapping, None, [0],
            llc_size_bytes=tiny.topology.llc.size_bytes,
        )
        expected = tiny.topology.llc.size_bytes // tiny.mapping.num_llc_colors
        assert cap.llc_bytes == expected

    def test_validation(self, tiny):
        with pytest.raises(ValueError):
            color_capacity(tiny.mapping, [], None)
        with pytest.raises(ValueError):
            color_capacity(tiny.mapping, [9999], None)

    def test_local_colors_helper(self, tiny):
        colors = mem_colors_local_to(tiny.mapping, 1)
        assert all(tiny.mapping.node_of_bank_color(c) == 1 for c in colors)


class TestColoredTeam:
    def test_team_applies_policy(self, tm):
        team = ColoredTeam.create(tm, cores=[0, 1, 2, 3], policy=Policy.MEM_LLC)
        assert team.nthreads == 4
        for handle, assignment in zip(team.handles, team.assignments):
            assert list(handle.task.mem_colors) == list(assignment.mem_colors)
            assert list(handle.task.llc_colors) == list(assignment.llc_colors)

    def test_buddy_team_uncolored(self, tm):
        team = ColoredTeam.create(tm, cores=[0, 1], policy=Policy.BUDDY)
        assert not any(h.task.colored for h in team.handles)

    def test_master_is_thread_zero(self, tm):
        team = ColoredTeam.create(tm, cores=[3, 1], policy=Policy.BUDDY)
        assert team.master.core == 3
