"""Presentation-layer smoke tests on a real (tiny) sweep.

The figure/report helpers were previously exercised only on hand-built
fake records; these tests run an actual mini-profile sweep end to end
and prove the presentation layer renders from it: every figure produces
non-empty ASCII output, CSV round-trips, and the generated claims table
names every claim ID the evaluators produce.
"""

from __future__ import annotations

import pytest

from repro.alloc.policies import Policy
from repro.experiments.claims import (
    evaluate_fig10_claims,
    evaluate_main_claims,
)
from repro.experiments.figures import (
    FIG10_POLICIES,
    MAIN_POLICIES,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
)
from repro.experiments.report import claims_table, read_csv, write_csv
from repro.experiments.runner import run_synthetic, sweep

CONFIG = "4_threads_4_nodes"


@pytest.fixture(scope="module")
def tiny_sweep():
    """One real mini-profile sweep shared by every smoke test."""
    return sweep(
        benches=["lbm"], policies=list(Policy), configs=[CONFIG],
        reps=1, profile="mini", seed=7,
    )


@pytest.fixture(scope="module")
def fig10_records():
    return [
        run_synthetic(policy, CONFIG, rep=0, profile="mini")
        for policy in FIG10_POLICIES
    ]


class TestFiguresRender:
    def test_fig10_renders(self, fig10_records):
        text = fig10(fig10_records).render()
        assert "Fig. 10" in text
        for policy in FIG10_POLICIES:
            assert policy.label in text

    def test_fig11_and_fig12_render(self, tiny_sweep):
        for fig in (fig11(tiny_sweep), fig12(tiny_sweep)):
            text = fig.render(CONFIG)
            assert text.strip()
            assert "lbm" in text

    def test_fig13_and_fig14_render(self, tiny_sweep):
        for fig in (fig13(tiny_sweep, CONFIG), fig14(tiny_sweep, CONFIG)):
            text = fig.render("lbm")
            assert text.strip()
            assert "t0" in text  # per-thread rows

    def test_main_policy_bars_present_in_fig11(self, tiny_sweep):
        # Fig. 11 plots the main bar set plus a computed best-other row,
        # not every policy in the sweep.
        fig = fig11(tiny_sweep)
        text = fig.render(CONFIG)
        for policy in MAIN_POLICIES:
            assert policy.label in text
        assert "best-other (" in text


class TestReportSmoke:
    def test_csv_roundtrip_preserves_aggregates(self, tiny_sweep, tmp_path):
        path = str(tmp_path / "sweep.csv")
        write_csv(tiny_sweep, path)
        back = read_csv(path)
        assert len(back) == len(tiny_sweep)
        for orig, loaded in zip(tiny_sweep, back):
            assert loaded.bench == orig.bench
            assert loaded.policy == orig.policy
            assert loaded.runtime == pytest.approx(orig.runtime)
            assert loaded.dram_accesses == orig.dram_accesses

    def test_claims_table_contains_every_claim_id(
        self, tiny_sweep, fig10_records
    ):
        claims = (
            evaluate_main_claims(tiny_sweep)
            + evaluate_fig10_claims(fig10_records)
        )
        assert claims, "tiny sweep produced no evaluable claims"
        text = claims_table(claims)
        for claim in claims:
            assert claim.claim_id in text
        # Table shape: header + separator + one row per claim.
        assert len(text.splitlines()) == 2 + len(claims)
