"""Hypothesis properties: memoized frame decode and LRU cache semantics.

Two independent oracles:

* :meth:`AddressMapping.frame_decode` (the engine's hot-path memo) must
  agree with the non-memoized scalar decode for every frame — including
  re-queries, which hit the memo dict rather than recomputing.
* :class:`repro.cache.cache.Cache` (insertion-ordered dict tricks,
  ``_ABSENT`` sentinel, inlined index math) must behave exactly like a
  brute-force LRU model written with plain lists.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.machine.presets import opteron_6128, tiny_machine
from repro.machine.topology import CacheGeometry
from repro.util.units import MIB

from tests.test_properties_address import mappings


class TestFrameDecodeMemo:
    @settings(max_examples=40, deadline=None)
    @given(mappings(), st.data())
    def test_roundtrip_vs_scalar_decode(self, m, data):
        """Memoized frame decode == scalar decode, first call and re-query."""
        pfns = data.draw(st.lists(
            st.integers(0, m.num_frames - 1), min_size=1, max_size=32
        ))
        for pfn in pfns + pfns:  # second pass re-queries the memo
            got = m.frame_decode(pfn)
            loc = m.decode(pfn << m.page_bits)
            assert got.pfn == pfn
            assert (got.node, got.channel, got.rank, got.bank) == (
                loc.node, loc.channel, loc.rank, loc.bank
            )
            assert got.bank_color == m.frame_bank_color(pfn)
            assert got.llc_color == m.frame_llc_color(pfn)
        assert m.frame_decode_cache_size == len(set(pfns))

    @settings(max_examples=10, deadline=None)
    @given(st.data())
    def test_preset_mappings_roundtrip(self, data):
        """Same property on the shipped presets the experiments run on."""
        machine = data.draw(st.sampled_from([
            tiny_machine(), opteron_6128(memory_bytes=128 * MIB),
        ]))
        m = machine.mapping
        pfn = data.draw(st.integers(0, m.num_frames - 1))
        got = m.frame_decode(pfn)
        loc = m.decode(pfn << m.page_bits)
        assert (got.node, got.channel, got.rank, got.bank) == (
            loc.node, loc.channel, loc.rank, loc.bank
        )


class ModelLRU:
    """Brute-force reference cache: lists, linear scans, obvious code."""

    def __init__(self, num_sets: int, ways: int, set_of_line) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.set_of_line = set_of_line
        # Each set: list of [line, dirty], LRU first, MRU last.
        self.sets = [[] for _ in range(num_sets)]

    def _find(self, entries, line):
        for i, (line_addr, _) in enumerate(entries):
            if line_addr == line:
                return i
        return None

    def lookup(self, line: int, is_write: bool) -> bool:
        entries = self.sets[self.set_of_line(line)]
        i = self._find(entries, line)
        if i is None:
            return False
        entry = entries.pop(i)
        entry[1] = entry[1] or is_write
        entries.append(entry)
        return True

    def insert(self, line: int, dirty: bool):
        entries = self.sets[self.set_of_line(line)]
        i = self._find(entries, line)
        victim = None
        if i is not None:
            dirty = entries.pop(i)[1] or dirty
        elif len(entries) >= self.ways:
            victim = tuple(entries.pop(0))
        entries.append([line, dirty])
        return victim

    def contents(self):
        """Per-set (line, dirty) tuples in LRU -> MRU order."""
        return [tuple(tuple(e) for e in s) for s in self.sets]


def _cache_contents(cache: Cache):
    return [tuple(s.items()) for s in cache._sets]


@st.composite
def cache_and_ops(draw):
    """A small cache geometry plus a random lookup/insert/... sequence."""
    sets_log2 = draw(st.integers(1, 4))
    ways = draw(st.integers(1, 4))
    hash_index = draw(st.booleans())
    geometry = CacheGeometry(
        size_bytes=(1 << sets_log2) * ways * 64, line_bytes=64, ways=ways
    )
    lines = st.integers(0, (1 << sets_log2) * ways * 4)
    ops = draw(st.lists(st.tuples(
        st.sampled_from(["lookup", "insert", "mark_dirty", "invalidate"]),
        lines,
        st.booleans(),
    ), max_size=200))
    return geometry, hash_index, ops


class TestCacheVsBruteForce:
    @settings(max_examples=200, deadline=None)
    @given(cache_and_ops())
    def test_equivalent_to_model(self, case):
        geometry, hash_index, ops = case
        cache = Cache(geometry, name="sut", hash_index=hash_index)
        model = ModelLRU(cache.num_sets, geometry.ways, cache.set_of_line)
        for op, line, flag in ops:
            if op == "lookup":
                assert cache.lookup(line, flag) == model.lookup(line, flag)
            elif op == "insert":
                got = cache.insert(line, flag)
                want = model.insert(line, flag)
                assert (tuple(got) if got else None) == want
            elif op == "mark_dirty":
                entries = model.sets[model.set_of_line(line)]
                i = model._find(entries, line)
                if i is not None:
                    entries[i][1] = True
                assert cache.mark_dirty(line) == (i is not None)
            else:
                entries = model.sets[model.set_of_line(line)]
                i = model._find(entries, line)
                if i is not None:
                    entries.pop(i)
                assert cache.invalidate(line) == (i is not None)
            # Full-state equivalence after every op: same lines, same
            # dirty bits, same LRU order in every set.
            assert _cache_contents(cache) == model.contents()

    @settings(max_examples=100, deadline=None)
    @given(cache_and_ops())
    def test_occupancy_never_exceeds_ways(self, case):
        geometry, hash_index, ops = case
        cache = Cache(geometry, name="sut", hash_index=hash_index)
        for op, line, flag in ops:
            if op == "lookup":
                cache.lookup(line, flag)
            elif op == "insert":
                cache.insert(line, flag)
            for idx in range(cache.num_sets):
                assert cache.occupancy_of_set(idx) <= geometry.ways
