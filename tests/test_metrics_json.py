"""Serialization round trips for RunMetrics and RunRecord (satellite).

The service result store persists these as JSON; a cache hit must
reconstruct *bit-identical* objects, so every round trip here asserts
full equality after a real ``json.dumps``/``loads`` wire trip, not just
field spot checks.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.alloc.policies import Policy
from repro.core.session import ColoredTeam
from repro.core.tintmalloc import TintMalloc
from repro.experiments.runner import RunRecord, run_benchmark
from repro.kernel.kernel import Kernel
from repro.machine.presets import tiny_machine
from repro.sim.barrier import Program, Section
from repro.sim.engine import Engine, MemorySystem
from repro.sim.metrics import SCHEMA_VERSION, RunMetrics
from repro.sim.trace import Trace
from repro.util.units import KIB, MIB


def _real_metrics() -> RunMetrics:
    """Metrics from an actual engine run (all sub-objects populated)."""
    machine = tiny_machine(8 * MIB)
    kernel = Kernel(machine, aged=True, age_seed=1)
    tm = TintMalloc(kernel=kernel)
    team = ColoredTeam.create(tm, [0, 1], Policy.MEM_LLC)
    memory = MemorySystem.for_machine(machine)
    engine = Engine(team, memory)
    traces = {}
    for tid in range(2):
        va = team.handles[tid].malloc(32 * KIB, label=f"buf{tid}")
        n = 2048
        vaddrs = va + (np.arange(n, dtype=np.int64) % 512) * 64
        traces[tid] = Trace(vaddrs=vaddrs, writes=np.ones(n, dtype=bool),
                            think_ns=1.0, label=f"t{tid}")
    program = Program(
        sections=[Section(kind="parallel", traces=traces, label="work")],
        nthreads=2, name="roundtrip",
    )
    return engine.run(program)


class TestRunMetricsRoundTrip:
    def test_round_trip_is_lossless(self):
        metrics = _real_metrics()
        wire = json.dumps(metrics.to_json())
        back = RunMetrics.from_json(json.loads(wire))
        assert back == metrics
        # Derived rollups agree too (they read the restored fields).
        assert back.summary() == metrics.summary()

    def test_nested_objects_restored_with_types(self):
        metrics = _real_metrics()
        back = RunMetrics.from_json(json.loads(json.dumps(metrics.to_json())))
        assert back.dram is not None
        assert back.dram.per_node_accesses == metrics.dram.per_node_accesses
        assert all(isinstance(k, int) for k in back.dram.per_node_accesses)
        assert set(back.cache) == set(metrics.cache)
        assert back.sections[0].label == "work"

    def test_schema_version_tagged_and_enforced(self):
        metrics = _real_metrics()
        data = metrics.to_json()
        assert data["schema_version"] == SCHEMA_VERSION
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            RunMetrics.from_json(data)


class TestRunRecordRoundTrip:
    def test_round_trip_is_bit_identical(self):
        record = run_benchmark("lbm", Policy.MEM_LLC, "4_threads_4_nodes",
                               rep=0, seed=3, profile="mini")
        wire = json.dumps(record.to_json())
        back = RunRecord.from_json(json.loads(wire))
        # Frozen dataclass equality: exact, field-for-field.
        assert back == record
        assert isinstance(back.thread_runtimes, tuple)
        assert isinstance(back.thread_idles, tuple)

    def test_schema_version_tagged_and_enforced(self):
        record = run_benchmark("lbm", Policy.BUDDY, "4_threads_4_nodes",
                               rep=0, seed=3, profile="mini")
        data = record.to_json()
        assert data["schema_version"] == SCHEMA_VERSION
        data["schema_version"] = None
        with pytest.raises(ValueError, match="schema_version"):
            RunRecord.from_json(data)
