"""End-to-end fault injection: every fault class recovers or fails typed.

The degradation invariant under test, per fault class: an injected
fault either (a) fully recovers — the job completes with a record
bit-identical to the fault-free run — or (b) surfaces as a typed
:class:`ServiceError`; never a hang, never silently-wrong data.

Also covers the degradation machinery itself (circuit breaker,
hedged retries, cache-store demotion), the ``NO_FAULTS``
behaviour-identity guarantee, and the acceptance regression test:
a serialized plan replayed in a fresh process produces the same
per-job outcomes (what CI's failing-plan artifact relies on).
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.faultline import NO_FAULTS, FaultPlan, FaultRule
from repro.faultline.campaign import (
    _run_specs,
    baseline_records,
    campaign_specs,
    canonical,
    random_plan,
    run_campaign,
    run_case,
)
from repro.faultline.faults import StoreIOFault
from repro.faultline.hooks import armed
from repro.service import (
    CircuitOpenError,
    FakeClock,
    JobFailed,
    JobSpec,
    MemoryStore,
    Scheduler,
    ServiceClient,
    ServiceError,
    ServiceServer,
    TransportError,
    request_sync,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")
REPO = str(Path(__file__).resolve().parent.parent)


def ok_runner(spec: JobSpec) -> dict:
    """Instant deterministic evaluation (module-level: fork-safe)."""
    return {"bench": spec.bench, "seed": spec.seed, "rep": spec.rep}


def slow_runner(spec: JobSpec) -> dict:
    """An evaluation slow enough to look like a straggler."""
    time.sleep(0.4)
    return {"bench": spec.bench, "rep": spec.rep}


def stub_spec(rep: int = 0, **kw) -> JobSpec:
    return JobSpec(bench="lbm", profile="mini", rep=rep, **kw)


def mini_spec(**kw) -> JobSpec:
    """A real (tiny) synthetic simulation spec for kernel-fault tests."""
    kw.setdefault("max_retries", 0)
    return JobSpec(kind="synthetic", bench="synthetic", policy="mem+llc",
                   config="4_threads_4_nodes", profile="mini", **kw)


def plan_of(*rules: FaultRule, seed: int = 0) -> FaultPlan:
    return FaultPlan(seed=seed, rules=tuple(rules))


class TestStoreFaults:
    def test_get_io_fault_is_a_typed_oserror(self):
        store = MemoryStore()
        store.put("d" * 64, {"bench": "x"}, {"v": 1})
        with armed(plan_of(FaultRule(site="store.get.io"))):
            with pytest.raises(StoreIOFault) as exc_info:
                store.get("d" * 64)
        assert isinstance(exc_info.value, OSError)

    def test_scheduler_absorbs_get_io_fault(self):
        plan = plan_of(FaultRule(site="store.get.io", max_fires=1))
        with armed(plan):
            with Scheduler(store=MemoryStore(), executor="inline",
                           runner=ok_runner) as sched:
                record = sched.submit(stub_spec()).result(timeout=30)
        assert record["bench"] == "lbm"
        assert sched.counters["store_errors"] == 1

    def test_persistent_store_errors_demote_to_miss_only(self):
        plan = plan_of(FaultRule(site="store.get.io"))
        store = MemoryStore()
        with armed(plan):
            with Scheduler(store=store, executor="inline", runner=ok_runner,
                           store_failure_limit=1) as sched:
                assert sched.submit(stub_spec(rep=0)).result(timeout=30)
                # Demoted now: later jobs never touch the store again,
                # including resubmissions that would have been cache hits.
                assert sched.submit(stub_spec(rep=1)).result(timeout=30)
                assert sched.submit(stub_spec(rep=0)).result(timeout=30)
        assert sched.counters["store_demotions"] == 1
        assert sched.counters["store_errors"] == 1
        assert sched.counters["cache_hits"] == 0
        assert sched.counters["completed"] == 3

    def test_corrupt_entry_is_never_returned(self):
        store = MemoryStore()
        store.put("e" * 64, {"bench": "x"}, {"v": 1})
        with armed(plan_of(FaultRule(site="store.get.corrupt"))):
            assert store.get("e" * 64) is None
        assert store.corrupt == 1
        assert store.get("e" * 64) == {"v": 1}  # entry itself is intact

    def test_corrupt_cache_recovers_bit_identical(self):
        store = MemoryStore()
        with Scheduler(store=store, executor="inline",
                       runner=ok_runner) as sched:
            first = sched.submit(stub_spec()).result(timeout=30)
        plan = plan_of(FaultRule(site="store.get.corrupt", max_fires=1))
        with armed(plan):
            with Scheduler(store=store, executor="inline",
                           runner=ok_runner) as sched:
                again = sched.submit(stub_spec()).result(timeout=30)
        assert canonical(again) == canonical(first)
        assert sched.counters["cache_hits"] == 0  # corrupt booked as miss
        assert store.corrupt == 1

    def test_put_io_fault_does_not_fail_the_job(self):
        store = MemoryStore()
        with armed(plan_of(FaultRule(site="store.put.io"))):
            with Scheduler(store=store, executor="inline",
                           runner=ok_runner) as sched:
                record = sched.submit(stub_spec()).result(timeout=30)
        assert record["bench"] == "lbm"
        assert sched.counters["store_errors"] == 1
        assert len(store) == 0  # the write really was lost


class TestSchedulerAndWorkerFaults:
    def test_attempt_kill_is_retried_and_recovers(self):
        spec = stub_spec(max_retries=2)
        with Scheduler(executor="inline", runner=ok_runner) as sched:
            baseline = sched.submit(spec).result(timeout=30)
        plan = plan_of(FaultRule(site="sched.attempt.kill",
                                 scopes=(f"{spec.digest()[:12]}#a0",)))
        with armed(plan):
            with Scheduler(executor="inline", runner=ok_runner,
                           backoff_base_s=0.001) as sched:
                handle = sched.submit(spec)
                record = handle.result(timeout=30)
        assert canonical(record) == canonical(baseline)
        assert [a["outcome"] for a in handle.attempts] == ["crash", "ok"]
        assert sched.counters["crashes"] == 1
        assert sched.counters["retries"] == 1

    def test_unbounded_kills_surface_typed_jobfailed(self):
        plan = plan_of(FaultRule(site="sched.attempt.kill"))
        with armed(plan):
            with Scheduler(executor="inline", runner=ok_runner,
                           backoff_base_s=0.001) as sched:
                handle = sched.submit(stub_spec(max_retries=1))
                with pytest.raises(JobFailed) as exc_info:
                    handle.result(timeout=30)
        assert isinstance(exc_info.value, ServiceError)
        assert [a["outcome"] for a in handle.attempts] == ["crash", "crash"]

    def test_worker_kill_inline_books_a_crash(self):
        plan = plan_of(FaultRule(site="worker.kill"))
        with armed(plan):
            with Scheduler(executor="inline", runner=ok_runner) as sched:
                handle = sched.submit(stub_spec(max_retries=0))
                with pytest.raises(JobFailed, match="faultline"):
                    handle.result(timeout=30)
        assert handle.attempts[0]["outcome"] == "crash"

    def test_worker_kill_in_child_process(self):
        # Fork inherits the armed plan; the child hard-exits mid-attempt
        # and the parent books a crash — same typed surface as inline.
        plan = plan_of(FaultRule(site="worker.kill"))
        with armed(plan):
            with Scheduler(executor="process", runner=ok_runner,
                           backoff_base_s=0.001) as sched:
                handle = sched.submit(stub_spec(max_retries=1, timeout_s=30))
                with pytest.raises(JobFailed):
                    handle.result(timeout=60)
        assert [a["outcome"] for a in handle.attempts] \
            == ["crash", "crash"]

    def test_worker_slow_start_delays_but_recovers(self):
        with Scheduler(executor="inline", runner=ok_runner) as sched:
            baseline = sched.submit(stub_spec()).result(timeout=30)
        plan = plan_of(FaultRule(site="worker.slow_start", arg=0.01))
        with armed(plan) as injector:
            with Scheduler(executor="inline", runner=ok_runner) as sched:
                record = sched.submit(stub_spec()).result(timeout=30)
            assert injector.fire_count("worker.slow_start") == 1
        assert canonical(record) == canonical(baseline)

    def test_worker_hang_is_bounded_by_the_job_timeout(self):
        # The hang stalls the child forever; the parent's timeout_s is
        # the only thing standing between that and a hung campaign.
        plan = plan_of(FaultRule(site="worker.hang"))
        with armed(plan):
            with Scheduler(executor="process", runner=ok_runner) as sched:
                handle = sched.submit(
                    stub_spec(max_retries=0, timeout_s=0.5)
                )
                with pytest.raises(JobFailed, match="exceeded"):
                    handle.result(timeout=60)
        assert handle.attempts[0]["outcome"] == "timeout"
        assert sched.counters["timeouts"] == 1


class TestKernelFaults:
    """Kernel-layer faults, driven through the real simulation runner."""

    def test_frame_exhaustion_surfaces_typed_error(self):
        plan = plan_of(FaultRule(site="kernel.pagealloc.exhaust"))
        with armed(plan):
            with Scheduler(executor="inline") as sched:
                handle = sched.submit(mini_spec())
                with pytest.raises(JobFailed) as exc_info:
                    handle.result(timeout=60)
        assert isinstance(exc_info.value, ServiceError)
        assert handle.attempts[0]["outcome"] == "err"

    def test_mmap_failure_surfaces_typed_error(self):
        plan = plan_of(FaultRule(site="kernel.mmap.fail"))
        with armed(plan):
            with Scheduler(executor="inline") as sched:
                handle = sched.submit(mini_spec())
                with pytest.raises(JobFailed, match="InjectedMmapError"):
                    handle.result(timeout=60)
        assert handle.attempts[0]["outcome"] == "err"

    @pytest.mark.parametrize(
        "site", ["kernel.pagealloc.exhaust", "kernel.mmap.fail"]
    )
    def test_single_kernel_fault_recovers_bit_identical(self, site):
        spec = mini_spec(max_retries=2)
        with Scheduler(executor="inline") as sched:
            baseline = sched.submit(spec).result(timeout=60)
        plan = plan_of(FaultRule(site=site, max_fires=1))
        with armed(plan) as injector:
            with Scheduler(executor="inline",
                           backoff_base_s=0.001) as sched:
                handle = sched.submit(spec)
                record = handle.result(timeout=60)
            assert injector.fire_count(site) == 1
        assert canonical(record) == canonical(baseline)
        assert [a["outcome"] for a in handle.attempts] == ["err", "ok"]


class TestServerFaults:
    def _with_server(self, plan, scope_checks):
        """Run ``scope_checks(port)`` in a thread against a live server."""
        async def main() -> None:
            store = MemoryStore()
            with ServiceClient(store=store, shards=1, executor="inline",
                               runner=ok_runner) as client:
                server = ServiceServer(client, port=0)
                await server.start()
                serve_task = asyncio.create_task(server.serve_forever())
                try:
                    with armed(plan):
                        await asyncio.to_thread(scope_checks, server.port)
                    # Disarmed, the same request works again (the server
                    # itself survived the drop; only that one connection
                    # died).
                    response = await asyncio.to_thread(
                        request_sync, "127.0.0.1", server.port,
                        {"op": "ping"}, 10.0,
                    )
                    assert response == {"ok": True, "pong": True}
                finally:
                    await server.stop()
                    await serve_task
        asyncio.run(main())

    def test_connection_drop_surfaces_transport_error(self):
        plan = plan_of(FaultRule(site="server.conn.drop",
                                 scopes=("ping#r0",)))

        def check(port: int) -> None:
            with pytest.raises(TransportError, match="dropped"):
                request_sync("127.0.0.1", port, {"op": "ping"}, 10.0)

        self._with_server(plan, check)

    def test_partial_write_surfaces_transport_error(self):
        plan = plan_of(FaultRule(site="server.write.partial",
                                 scopes=("ping#r0",)))

        def check(port: int) -> None:
            with pytest.raises(TransportError, match="truncated"):
                request_sync("127.0.0.1", port, {"op": "ping"}, 10.0)

        self._with_server(plan, check)


class TestDegradation:
    """The graceful-degradation machinery itself (no plan required)."""

    @staticmethod
    def _flaky_by_rep(threshold: int):
        def runner(spec: JobSpec) -> dict:
            if spec.rep < threshold:
                raise RuntimeError(f"organic failure rep={spec.rep}")
            return {"rep": spec.rep}
        return runner

    def test_breaker_opens_and_fails_fast_typed(self):
        clock = FakeClock()
        with Scheduler(executor="inline", runner=self._flaky_by_rep(99),
                       clock=clock, breaker_threshold=3,
                       breaker_cooldown_s=100.0) as sched:
            for rep in range(3):
                with pytest.raises(JobFailed):
                    sched.submit(stub_spec(rep=rep, max_retries=0)).result(timeout=30)
            assert sched.counters["breaker_opens"] == 1
            # The open shard sheds load: typed fast-fail, no attempt run.
            handle = sched.submit(stub_spec(rep=3, max_retries=0))
            with pytest.raises(CircuitOpenError, match="shedding load"):
                handle.result(timeout=30)
            assert handle.attempts == []
            assert sched.counters["breaker_fast_fails"] == 1

    def test_breaker_half_open_probe_success_closes(self):
        clock = FakeClock()
        with Scheduler(executor="inline", runner=self._flaky_by_rep(3),
                       clock=clock, breaker_threshold=3,
                       breaker_cooldown_s=100.0) as sched:
            for rep in range(3):
                with pytest.raises(JobFailed):
                    sched.submit(stub_spec(rep=rep, max_retries=0)).result(timeout=30)
            clock.advance(100.0)
            # Cooldown elapsed: one probe admitted; it succeeds and the
            # shard goes back to normal service.
            assert sched.submit(stub_spec(rep=3, max_retries=0)).result(timeout=30)
            assert sched.submit(stub_spec(rep=4, max_retries=0)).result(timeout=30)
            assert sched.counters["breaker_opens"] == 1
            assert sched.counters["breaker_fast_fails"] == 0
            assert sched.counters["completed"] == 2

    def test_breaker_probe_failure_reopens(self):
        clock = FakeClock()
        with Scheduler(executor="inline", runner=self._flaky_by_rep(99),
                       clock=clock, breaker_threshold=3,
                       breaker_cooldown_s=100.0) as sched:
            for rep in range(3):
                with pytest.raises(JobFailed):
                    sched.submit(stub_spec(rep=rep, max_retries=0)).result(timeout=30)
            clock.advance(100.0)
            with pytest.raises(JobFailed):  # the probe itself ran, failed
                sched.submit(stub_spec(rep=3, max_retries=0)).result(timeout=30)
            assert sched.counters["breaker_opens"] == 2
            with pytest.raises(CircuitOpenError):  # and the shard re-shed
                sched.submit(stub_spec(rep=4, max_retries=0)).result(timeout=30)

    def test_hedged_retry_rescues_a_straggler(self):
        with Scheduler(executor="process", runner=slow_runner,
                       hedge_after_s=0.05) as sched:
            record = sched.submit(
                stub_spec(timeout_s=30)
            ).result(timeout=60)
        assert record["bench"] == "lbm"
        assert sched.counters["hedges"] >= 1
        assert sched.counters["completed"] == 1


class TestNoFaultsEquivalence:
    def test_no_faults_sweep_bit_identical_to_unarmed(self):
        specs = campaign_specs()
        unarmed = baseline_records(specs)
        with armed(NO_FAULTS) as injector:
            assert injector is None  # arming the empty plan is a no-op
            under_plan = baseline_records(specs)
        assert under_plan == unarmed


class TestCampaign:
    def test_random_plans_are_deterministic_and_varied(self):
        assert random_plan(5, 3) == random_plan(5, 3)
        plans = {random_plan(5, i) for i in range(6)}
        assert len(plans) == 6

    def test_short_campaign_invariant_holds(self):
        result = run_campaign(budget_s=60.0, seed=0, max_cases=3)
        assert result.ok, result.failure
        assert result.cases_run == 3
        assert result.failure is None

    def test_run_case_reports_no_violation_for_empty_plan(self):
        assert run_case(NO_FAULTS) is None

    def test_failing_plan_replays_in_fresh_process(self, tmp_path):
        """Acceptance regression: a serialized plan reproduces the same
        per-job outcomes in a brand-new interpreter.

        Only cap-free rules here: with no ``max_fires`` bookkeeping,
        every decision is a pure (seed, site, scope) function and the
        fresh process must match outcome-for-outcome regardless of
        thread interleaving.
        """
        plan = plan_of(
            FaultRule(site="sched.attempt.kill", probability=0.5),
            FaultRule(site="store.put.io", probability=0.5),
            seed=99,
        )
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(plan.dumps() + "\n")

        specs = campaign_specs()
        with armed(plan):
            results = _run_specs(specs, "inline")
        local = {
            digest: [kind,
                     canonical(payload) if kind == "ok"
                     else type(payload).__name__]
            for digest, (kind, payload) in results.items()
        }

        script = (
            "import json, sys\n"
            "from repro.faultline import FaultPlan\n"
            "from repro.faultline.hooks import armed\n"
            "from repro.faultline.campaign import (\n"
            "    _run_specs, campaign_specs, canonical)\n"
            "plan = FaultPlan.loads(open(sys.argv[1]).read())\n"
            "with armed(plan):\n"
            "    results = _run_specs(campaign_specs(), 'inline')\n"
            "out = {d: [k, canonical(p) if k == 'ok' else type(p).__name__]\n"
            "       for d, (k, p) in results.items()}\n"
            "print(json.dumps(out, sort_keys=True))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(plan_path)],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        )
        assert json.loads(proc.stdout) == local

        # And the CI replay entry point agrees the invariant held.
        replay = subprocess.run(
            [sys.executable, str(Path(REPO) / "tools" / "chaos_sim.py"),
             "--replay", str(plan_path)],
            capture_output=True, text=True,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        )
        assert replay.returncode == 0, replay.stdout + replay.stderr
        assert "invariant held" in replay.stdout
