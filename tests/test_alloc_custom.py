"""CustomPolicy: the structured per-thread coloring the search tunes.

The critical contract is *encoding fidelity*: a named paper policy
re-expressed as a CustomPolicy must produce a bit-identical run —
that is what lets the search seed its population with the paper's
configurations and guarantees the tuned front can never lose to them.
"""

from __future__ import annotations

import json

import pytest

from repro.alloc.custom import CustomPolicy, resolve_policy
from repro.alloc.planner import ColorAssignment, plan_colors
from repro.alloc.policies import Policy
from repro.experiments.configs import CONFIGS
from repro.experiments.runner import profile_machine, run_benchmark

CONFIG = "4_threads_4_nodes"
PROFILE = "mini"


def named_as_custom(policy: Policy, config: str = CONFIG,
                    profile: str = PROFILE) -> CustomPolicy:
    machine = profile_machine(profile)
    assignments = plan_colors(
        policy, list(CONFIGS[config].cores), machine.mapping,
        machine.topology,
    )
    return CustomPolicy(
        name=f"as-custom:{policy.value}", assignments=tuple(assignments)
    )


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        policy = CustomPolicy(
            name="t", aged=True, hugepages=True,
            assignments=(
                ColorAssignment(mem_colors=(3, 1), llc_colors=(2,)),
                ColorAssignment(mem_colors=(), llc_colors=(0, 5)),
            ),
        )
        back = CustomPolicy.from_json(policy.to_json())
        assert back == policy
        assert back.to_json() == policy.to_json()

    def test_canonicalizes_color_order_and_duplicates(self):
        a = CustomPolicy(name="x", assignments=(
            ColorAssignment(mem_colors=(5, 1, 5), llc_colors=(4, 2)),
        ))
        b = CustomPolicy(name="x", assignments=(
            ColorAssignment(mem_colors=(1, 5), llc_colors=(2, 4, 2)),
        ))
        assert a.to_json() == b.to_json()
        assert json.dumps(a.to_json(), sort_keys=True) == json.dumps(
            b.to_json(), sort_keys=True
        )

    def test_resolve_policy_dispatch(self):
        assert resolve_policy("mem+llc") is Policy.MEM_LLC
        custom = named_as_custom(Policy.MEM)
        assert resolve_policy(custom) is custom
        resolved = resolve_policy(custom.to_json())
        assert isinstance(resolved, CustomPolicy)
        assert resolved == custom


class TestValidation:
    def test_rejects_out_of_range_colors(self):
        machine = profile_machine(PROFILE)
        bad = CustomPolicy(name="bad", assignments=(
            ColorAssignment(mem_colors=(10**6,), llc_colors=()),
        ))
        with pytest.raises(ValueError, match="color"):
            bad.validate(machine.mapping, machine.topology, nthreads=1)

    def test_rejects_incompatible_pairs(self):
        machine = profile_machine(PROFILE)
        mapping = machine.mapping
        llc = 0
        banks = [
            b for b in range(mapping.num_bank_colors)
            if not mapping.colors_compatible(b, llc)
        ]
        if not banks:
            pytest.skip("preset has no incompatible pair")
        bad = CustomPolicy(name="bad", assignments=(
            ColorAssignment(mem_colors=(banks[0],), llc_colors=(llc,)),
        ))
        with pytest.raises(ValueError, match="compatible"):
            bad.validate(machine.mapping, machine.topology, nthreads=1)

    def test_thread_count_must_match(self):
        machine = profile_machine(PROFILE)
        one = CustomPolicy(name="one", assignments=(
            ColorAssignment(mem_colors=(), llc_colors=()),
        ))
        with pytest.raises(ValueError, match="thread"):
            one.validate(machine.mapping, machine.topology, nthreads=4)


class TestEncodingFidelity:
    @pytest.mark.parametrize("policy", [Policy.BUDDY, Policy.MEM_LLC])
    def test_custom_encoding_runs_bit_identical(self, policy):
        named = run_benchmark("lbm", policy, CONFIG, rep=0, profile=PROFILE)
        custom = run_benchmark(
            "lbm", named_as_custom(policy), CONFIG, rep=0, profile=PROFILE
        )
        assert custom.runtime == named.runtime
        assert custom.thread_runtimes == named.thread_runtimes
        assert custom.total_idle == named.total_idle
        assert custom.remote_fraction == named.remote_fraction

    def test_aged_and_hugepage_flags_change_the_run(self):
        base = named_as_custom(Policy.MEM_LLC)
        plain = run_benchmark("lbm", base, CONFIG, rep=0, profile=PROFILE)
        aged = run_benchmark(
            "lbm",
            CustomPolicy(name="aged", assignments=base.assignments,
                         aged=True),
            CONFIG, rep=0, profile=PROFILE,
        )
        huge = run_benchmark(
            "lbm",
            CustomPolicy(name="huge", assignments=base.assignments,
                         hugepages=True),
            CONFIG, rep=0, profile=PROFILE,
        )
        assert aged.runtime != plain.runtime
        assert huge.runtime != plain.runtime
