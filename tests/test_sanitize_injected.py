"""Negative tests: deliberately corrupt each layer, sanitizer must catch it.

Every test builds a healthy small environment, verifies the checkers
pass, injects one specific corruption (a leaked frame, a misfiled free
slot, a scrambled LRU set, an illegal bank transition, drifting stats),
and asserts the checker raises a :class:`SanitizeViolation` attributed
to the right layer and invariant.  The last test drives a corruption
through the full ``--sanitize full`` engine path (violation raised from
inside ``engine.run``), not just a direct checker call.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc.policies import Policy
from repro.core.session import ColoredTeam
from repro.core.tintmalloc import TintMalloc
from repro.kernel.frame import FrameState
from repro.kernel.kernel import Kernel
from repro.machine.presets import tiny_machine
from repro.sanitize import (
    CacheChecker,
    DramChecker,
    HeapChecker,
    KernelChecker,
    SanitizerObserver,
    SanitizeViolation,
)
from repro.sim.barrier import Program, Section
from repro.sim.engine import Engine, MemorySystem
from repro.sim.trace import Trace
from repro.util.units import KIB, MIB


def small_env(observer=None):
    """A 1-thread tiny-machine environment (optionally sanitized)."""
    kwargs = {} if observer is None else {"observer": observer}
    machine = tiny_machine(8 * MIB)
    kernel = Kernel(machine, aged=True, age_seed=1, **kwargs)
    tm = TintMalloc(kernel=kernel)
    team = ColoredTeam.create(tm, [0], Policy.MEM_LLC)
    memory = MemorySystem.for_machine(machine, **kwargs)
    engine = Engine(team, memory, **kwargs)
    return kernel, tm, team, memory, engine


def run_small_program(team, engine, label="warm"):
    """Write-heavy pass over a fresh 32 KiB region (populates all layers)."""
    va = team.handles[0].malloc(32 * KIB, label=label)
    n = 1024
    vaddrs = va + (np.arange(n, dtype=np.int64) % 512) * 64
    trace = Trace(vaddrs=vaddrs, writes=np.ones(n, dtype=bool), think_ns=1.0,
                  label=label)
    engine.run(Program(sections=[Section(kind="parallel", traces={0: trace},
                                         label=label)],
                       nthreads=team.nthreads, name=label))
    return va


class TestKernelInjection:
    def test_leaked_frame_out_of_color_list(self):
        kernel, tm, team, memory, engine = small_env()
        # Touch pages through the engine (frames are demand-allocated on
        # fault), then free, so the color matrix holds free frames.
        va = run_small_program(team, engine)
        team.handles[0].free(va)
        checker = KernelChecker(kernel)
        checker.check()  # healthy
        # Drop one frame from a color-list deque without updating the
        # state array: the frame is now leaked (state says COLORED_FREE,
        # no structure holds it).
        lists = kernel.page_allocator.colors._lists
        bucket = next(b for b in lists.values() if len(b))
        bucket.popleft()
        with pytest.raises(SanitizeViolation) as exc:
            checker.check()
        assert exc.value.layer == "kernel"
        # Caught either by the count conservation or the color matrix's
        # own structural audit, depending on which bookkeeping went stale.
        assert exc.value.invariant in ("colorlist-count", "colorlist-structure")

    def test_frame_partition_mismatch(self):
        kernel, tm, team, memory, engine = small_env()
        va = run_small_program(team, engine)
        team.handles[0].free(va)
        checker = KernelChecker(kernel)
        checker.check()
        # Swap a buddy frame's state with a colored frame's: totals still
        # conserve, so only the full partition walk can see it.
        state = kernel.pool.state
        buddy_pfn = int(np.flatnonzero(state == int(FrameState.BUDDY))[0])
        col_pfn = int(
            np.flatnonzero(state == int(FrameState.COLORED_FREE))[0]
        )
        state[buddy_pfn] = int(FrameState.COLORED_FREE)
        state[col_pfn] = int(FrameState.BUDDY)
        with pytest.raises(SanitizeViolation) as exc:
            checker.check()
        assert exc.value.layer == "kernel"
        assert exc.value.invariant == "frame-partition"

    def test_stale_owner_on_free_frame(self):
        kernel, *_ = small_env()
        checker = KernelChecker(kernel)
        checker.check()
        free_pfn = int(
            np.flatnonzero(kernel.pool.state != int(FrameState.ALLOCATED))[0]
        )
        kernel.pool.owner[free_pfn] = 7
        with pytest.raises(SanitizeViolation) as exc:
            checker.check()
        assert exc.value.invariant == "owner-stale"


class TestHeapInjection:
    def test_freed_span_on_wrong_list(self):
        kernel, tm, team, memory, engine = small_env()
        team.handles[0].malloc(256, label="a")  # small alloc -> arena
        checker = HeapChecker(tm.heap)
        checker.check()
        # File a bogus slot, far outside every arena chunk, on a free
        # list — "returned to the wrong list".
        arena = next(iter(tm.heap._arenas.values()))
        arena.free_lists.setdefault(64, []).append(0x10)
        with pytest.raises(SanitizeViolation) as exc:
            checker.check()
        assert exc.value.layer == "alloc"
        assert exc.value.invariant == "free-outside-arena"

    def test_live_allocation_also_on_free_list(self):
        kernel, tm, team, memory, engine = small_env()
        va = team.handles[0].malloc(256, label="a")
        checker = HeapChecker(tm.heap)
        checker.check()
        arena = next(iter(tm.heap._arenas.values()))
        arena.free_lists.setdefault(256, []).append(va)
        with pytest.raises(SanitizeViolation) as exc:
            checker.check()
        assert exc.value.invariant == "free-live-overlap"

    def test_byte_accounting_drift(self):
        kernel, tm, team, memory, engine = small_env()
        team.handles[0].malloc(1 * KIB, label="a")
        checker = HeapChecker(tm.heap)
        checker.check()
        tm.heap.bytes_allocated += 64
        with pytest.raises(SanitizeViolation) as exc:
            checker.check_fast()
        assert exc.value.invariant == "bytes-accounting"


class TestCacheInjection:
    def test_line_moved_to_wrong_set(self):
        kernel, tm, team, memory, engine = small_env()
        run_small_program(team, engine)
        checker = CacheChecker(memory.hierarchy)
        checker.check()
        llc = memory.hierarchy.llc
        # Move a resident line into a set it does not index to —
        # corrupted LRU bookkeeping.
        idx, entries = next(
            (i, s) for i, s in enumerate(llc._sets) if len(s)
        )
        line, dirty = next(iter(entries.items()))
        del entries[line]
        wrong = (idx + 1) % llc.num_sets
        assert llc.set_of_line(line) != wrong
        llc._sets[wrong][line] = dirty
        with pytest.raises(SanitizeViolation) as exc:
            checker.check()
        assert exc.value.layer == "cache"
        assert exc.value.invariant == "line-misplaced"

    def test_set_overflow(self):
        kernel, tm, team, memory, engine = small_env()
        run_small_program(team, engine)
        checker = CacheChecker(memory.hierarchy)
        checker.check()
        llc = memory.hierarchy.llc
        # Stuff one set past its associativity with correctly-indexed
        # phantom lines.
        idx = 0
        line = idx
        added = 0
        while added <= llc._ways:
            if llc.set_of_line(line) == idx and line not in llc._sets[idx]:
                llc._sets[idx][line] = False
                added += 1
            line += llc.num_sets
        with pytest.raises(SanitizeViolation) as exc:
            checker.check()
        assert exc.value.invariant == "set-overflow"

    def test_dirty_eviction_accounting_mismatch(self):
        kernel, tm, team, memory, engine = small_env()
        run_small_program(team, engine)
        checker = CacheChecker(memory.hierarchy)
        checker.check()
        # A dirty eviction that never reached DRAM as a write-back.
        memory.hierarchy.dirty_evictions += 1
        with pytest.raises(SanitizeViolation) as exc:
            checker.check_fast()
        assert exc.value.invariant == "dirty-writeback-accounting"


class TestDramInjection:
    def test_bank_busy_rewind(self):
        kernel, tm, team, memory, engine = small_env()
        run_small_program(team, engine)
        checker = DramChecker(memory.dram)
        checker.check()
        bank = max(memory.dram.banks, key=lambda b: b.busy_until)
        assert bank.busy_until > 0.0
        bank.busy_until *= 0.5  # occupancy may only book forward
        with pytest.raises(SanitizeViolation) as exc:
            checker.check()
        assert exc.value.layer == "dram"
        assert exc.value.invariant == "bank-busy-rewind"

    def test_phantom_open_row(self):
        kernel, tm, team, memory, engine = small_env()
        run_small_program(team, engine)
        checker = DramChecker(memory.dram)
        checker.check()
        idle = next(b for b in memory.dram.banks if b.total_accesses == 0)
        idle.open_row = 5  # a row opened without any request: illegal
        with pytest.raises(SanitizeViolation) as exc:
            checker.check()
        assert exc.value.invariant == "bank-row-phantom"

    def test_stats_drift(self):
        kernel, tm, team, memory, engine = small_env()
        run_small_program(team, engine)
        checker = DramChecker(memory.dram)
        checker.check()
        memory.dram.stats.accesses += 1  # drifted aggregate counter
        with pytest.raises(SanitizeViolation) as exc:
            checker.check_fast()
        assert exc.value.invariant == "row-kind-conservation"


class TestEndToEndSanitizePath:
    def test_corruption_caught_inside_engine_run(self):
        """The full --sanitize full path: violation surfaces from run()."""
        observer = SanitizerObserver.for_level("full", check_every=64)
        kernel, tm, team, memory, engine = small_env(observer=observer)
        observer.sanitizer.attach_engine(engine)
        run_small_program(team, engine)  # healthy run, checks sampled
        assert observer.sanitizer.events_seen > 0
        assert observer.sanitizer.checkpoints > 0
        # Corrupt the LLC between programs; the next run's sampled
        # checks / section checkpoint must abort it.
        llc = memory.hierarchy.llc
        idx, entries = next(
            (i, s) for i, s in enumerate(llc._sets) if len(s)
        )
        line, dirty = next(iter(entries.items()))
        del entries[line]
        llc._sets[(idx + 1) % llc.num_sets][line] = dirty
        with pytest.raises(SanitizeViolation) as exc:
            run_small_program(team, engine, label="after-corruption")
        assert exc.value.layer == "cache"
