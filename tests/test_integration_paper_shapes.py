"""Integration tests: the paper's headline shapes on the scaled profile.

These run full benchmark simulations (a few seconds each) and assert the
*direction* of the paper's core claims:

* TintMalloc's MEM+LLC coloring beats standard buddy allocation on the
  flagship benchmark (lbm) at 16 threads / 4 nodes;
* the prior-work baseline BPM is slower than both (remote banks);
* idle time and per-thread imbalance shrink under MEM+LLC;
* the synthetic benchmark (Fig. 10) orders buddy > LLC/MEM > MEM/LLC.
"""

import pytest

from repro.alloc.policies import Policy
from repro.experiments.runner import run_benchmark, run_synthetic


@pytest.fixture(scope="module")
def lbm_runs():
    return {
        policy: run_benchmark("lbm", policy, "16_threads_4_nodes",
                              profile="scaled")
        for policy in (Policy.BUDDY, Policy.BPM, Policy.MEM_LLC)
    }


class TestLbmHeadline:
    def test_memllc_beats_buddy(self, lbm_runs):
        assert lbm_runs[Policy.MEM_LLC].runtime < lbm_runs[Policy.BUDDY].runtime

    def test_reduction_magnitude_in_band(self, lbm_runs):
        """Paper: −29.84 % at 16t/4n; accept a generous band around it."""
        reduction = 1 - (
            lbm_runs[Policy.MEM_LLC].runtime / lbm_runs[Policy.BUDDY].runtime
        )
        assert 0.10 < reduction < 0.55

    def test_bpm_is_worst(self, lbm_runs):
        assert lbm_runs[Policy.BPM].runtime > lbm_runs[Policy.BUDDY].runtime
        assert lbm_runs[Policy.BPM].runtime > lbm_runs[Policy.MEM_LLC].runtime

    def test_bpm_remote_dominated(self, lbm_runs):
        assert lbm_runs[Policy.BPM].remote_fraction > 0.5
        assert lbm_runs[Policy.MEM_LLC].remote_fraction < 0.2

    def test_idle_reduced(self, lbm_runs):
        """Paper: up to 74.3 % lower idle time under MEM+LLC."""
        assert (
            lbm_runs[Policy.MEM_LLC].total_idle
            < 0.6 * lbm_runs[Policy.BUDDY].total_idle
        )

    def test_imbalance_reduced(self, lbm_runs):
        """Paper: buddy's max-min thread runtime spread is several times
        MEM+LLC's (4.38x for lbm)."""
        assert (
            lbm_runs[Policy.BUDDY].runtime_spread
            > 2.0 * lbm_runs[Policy.MEM_LLC].runtime_spread
        )

    def test_max_thread_runtime_reduced(self, lbm_runs):
        """Paper: the slowest thread is ~30 % faster under MEM+LLC."""
        assert (
            lbm_runs[Policy.MEM_LLC].max_thread_runtime
            < lbm_runs[Policy.BUDDY].max_thread_runtime
        )

    def test_row_buffer_isolation_visible(self, lbm_runs):
        assert (
            lbm_runs[Policy.MEM_LLC].row_hit_rate
            > lbm_runs[Policy.BUDDY].row_hit_rate
        )


class TestSyntheticFig10:
    @pytest.fixture(scope="class")
    def runs(self):
        return {
            policy: run_synthetic(policy, "16_threads_4_nodes",
                                  profile="scaled")
            for policy in (Policy.BUDDY, Policy.LLC, Policy.MEM,
                           Policy.MEM_LLC)
        }

    def test_all_colorings_beat_buddy(self, runs):
        base = runs[Policy.BUDDY].runtime
        for policy in (Policy.LLC, Policy.MEM, Policy.MEM_LLC):
            assert runs[policy].runtime < base

    def test_memllc_reduction_band(self, runs):
        """Paper: up to 17 % for MEM/LLC on the synthetic benchmark."""
        reduction = 1 - runs[Policy.MEM_LLC].runtime / runs[Policy.BUDDY].runtime
        assert 0.05 < reduction < 0.60
