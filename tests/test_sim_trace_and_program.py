"""Unit tests for traces, sections, and program structure."""

import numpy as np
import pytest

from repro.sim.barrier import Program, Section
from repro.sim.trace import Trace, empty_trace


def make_trace(n=10, think=1.0):
    return Trace(
        vaddrs=np.arange(n, dtype=np.int64) * 64,
        writes=np.zeros(n, dtype=bool),
        think_ns=think,
    )


class TestTrace:
    def test_length_and_lists(self):
        t = make_trace(5, think=2.0)
        vas, writes, thinks = t.as_lists()
        assert len(vas) == len(writes) == len(thinks) == 5
        assert thinks == [2.0] * 5
        assert isinstance(vas[0], int)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.zeros(3, np.int64), np.zeros(2, bool))

    def test_per_access_think(self):
        t = Trace(
            np.zeros(3, np.int64), np.zeros(3, bool),
            think_ns=np.array([1.0, 2.0, 3.0]),
        )
        assert t.total_think_ns == 6.0

    def test_per_access_think_length_checked(self):
        with pytest.raises(ValueError):
            Trace(np.zeros(3, np.int64), np.zeros(3, bool),
                  think_ns=np.array([1.0]))

    def test_concat(self):
        t = Trace.concat([make_trace(3, 1.0), make_trace(2, 5.0)])
        assert len(t) == 5
        assert t.total_think_ns == 3 * 1.0 + 2 * 5.0

    def test_concat_empty(self):
        assert len(Trace.concat([])) == 0

    def test_concat_joins_labels_when_label_omitted(self):
        a, b = make_trace(2), make_trace(2)
        a.label, b.label = "a", "b"
        assert Trace.concat([a, b]).label == "a+b"

    def test_concat_explicit_label_always_wins(self):
        """Regression: an explicit label (even "") must override joining."""
        a, b = make_trace(2), make_trace(2)
        a.label, b.label = "a", "b"
        assert Trace.concat([a, b], label="joined").label == "joined"
        assert Trace.concat([a, b], label="").label == ""
        # Empty input behaves identically.
        assert Trace.concat([], label="joined").label == "joined"
        assert Trace.concat([]).label == ""

    def test_empty_trace(self):
        assert len(empty_trace()) == 0


class TestSection:
    def test_serial_must_be_master_only(self):
        with pytest.raises(ValueError):
            Section(kind="serial", traces={1: make_trace()})

    def test_parallel_needs_traces(self):
        with pytest.raises(ValueError):
            Section(kind="parallel", traces={})

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Section(kind="magic", traces={0: make_trace()})

    def test_accesses_count(self):
        s = Section("parallel", {0: make_trace(3), 1: make_trace(4)})
        assert s.accesses == 7


class TestProgram:
    def test_thread_indices_validated(self):
        s = Section("parallel", {5: make_trace()})
        with pytest.raises(ValueError):
            Program(sections=[s], nthreads=2)

    def test_totals(self):
        p = Program(
            sections=[
                Section("serial", {0: make_trace(2)}),
                Section("parallel", {0: make_trace(3), 1: make_trace(3)}),
            ],
            nthreads=2,
        )
        assert p.total_accesses == 8
        assert len(p.parallel_sections) == 1
