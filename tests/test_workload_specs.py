"""Calibration invariants of the six benchmark specs.

These encode the paper's §V-B characterisation as assertions, so a future
re-tuning cannot silently contradict the qualitative facts the models are
built from.
"""


from repro.machine.presets import opteron_6128
from repro.workloads.registry import BENCH_ORDER, get_workload
from repro.workloads.parsec import BLACKSCHOLES, BODYTRACK, FREQMINE
from repro.workloads.spec import ART, EQUAKE, LBM


def llc_share_per_thread(nthreads=16):
    spec = opteron_6128()
    return spec.topology.llc.size_bytes * 2 // 32  # 2 colors of 32


class TestPaperCharacterisation:
    def test_lbm_is_most_memory_intensive(self):
        """Paper: lbm shows the largest enhancement; it is the most
        memory-intensive (lowest think time) and streams."""
        assert LBM.think_ns <= min(
            s.think_ns for s in (ART, EQUAKE, BODYTRACK, FREQMINE,
                                 BLACKSCHOLES)
        )
        assert LBM.pattern == "stream"

    def test_lbm_footprint_exceeds_llc_share(self):
        """lbm is DRAM-bound under any allocator (grids >> cache)."""
        assert LBM.per_thread_bytes > 3 * llc_share_per_thread()

    def test_blackscholes_is_compute_bound_and_master_heavy(self):
        """Paper: blackscholes reads a large input, is less memory
        intensive, and has the largest serial master fraction."""
        assert BLACKSCHOLES.think_ns >= 5 * max(
            LBM.think_ns, ART.think_ns, FREQMINE.think_ns
        )
        assert BLACKSCHOLES.master_init_fraction >= 0.8
        assert BLACKSCHOLES.serial_accesses * BLACKSCHOLES.serial_think_ns >= max(
            s.serial_accesses * s.serial_think_ns
            for s in (LBM, ART, EQUAKE, BODYTRACK, FREQMINE)
        )

    def test_worker_first_touch_for_good_benchmarks(self):
        """Paper condition (3): the winning benchmarks' partitions are
        first-touched by the worker threads themselves."""
        for spec in (LBM, ART, EQUAKE, BODYTRACK, FREQMINE):
            assert spec.master_init_fraction <= 0.05, spec.name

    def test_freqmine_has_largest_shared_structure(self):
        """Paper/DESIGN: freqmine's shared FP-tree drives its (part)
        crossover."""
        assert FREQMINE.shared_bytes >= max(
            s.shared_bytes for s in (LBM, ART, EQUAKE, BODYTRACK)
        )
        assert FREQMINE.shared_fraction >= 2 * LBM.shared_fraction

    def test_irregular_benchmarks_use_chunked_random(self):
        for spec in (ART, EQUAKE, BODYTRACK, FREQMINE):
            assert spec.pattern == "random", spec.name
            assert spec.chunk_lines >= 8, spec.name

    def test_all_specs_fit_colored_capacity(self):
        """Per-thread footprints must fit the tightest colored budget
        (MEM+LLC at 16 threads on the scaled experiment machine), or
        experiment runs would hit OutOfColoredMemory."""
        from repro.experiments.runner import PROFILES

        factory, memory_bytes, scale = PROFILES["scaled"]
        mapping = factory(memory_bytes).mapping
        # 8 bank colors x 2 LLC colors, sparse compatibility -> 4 combos.
        budget = 4 * mapping.frames_per_combo() * mapping.page_bytes
        for name in BENCH_ORDER:
            spec = get_workload(name).scaled(scale)
            need = spec.per_thread_bytes * 1.3  # arena/guard slack
            assert need < budget, (name, need, budget)

    def test_every_bench_has_multiple_barriers(self):
        """Figs. 12/14 need several parallel sections per run."""
        for name in BENCH_ORDER:
            assert get_workload(name).compute_sections >= 2, name
