"""TCP front-end: line-JSON protocol round trips over a real socket."""

from __future__ import annotations

import asyncio
import json

from repro.service import JobSpec, MemoryStore, ServiceClient, ServiceServer
from repro.service.server import request_sync


def stub_runner(spec: JobSpec) -> dict:
    """Instant fake evaluation (the server's behavior is what's under
    test, not the simulator)."""
    return {"bench": spec.bench, "seed": spec.seed, "ran": True}


async def _rpc(reader, writer, payload: dict) -> dict:
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), timeout=30)
    return json.loads(line)


def test_server_protocol_end_to_end():
    async def main() -> None:
        store = MemoryStore()
        with ServiceClient(store=store, shards=2, executor="inline",
                           runner=stub_runner) as client:
            server = ServiceServer(client, port=0)
            await server.start()
            serve_task = asyncio.create_task(server.serve_forever())
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )

            response = await _rpc(reader, writer, {"op": "ping"})
            assert response == {"ok": True, "pong": True}

            spec = JobSpec(bench="lbm", profile="mini", seed=1)
            response = await _rpc(
                reader, writer,
                {"op": "submit", "spec": spec.to_json(), "wait": True,
                 "timeout": 30},
            )
            assert response["ok"]
            assert response["status"] == "completed"
            assert response["record"]["ran"] is True
            digest = response["digest"]
            assert digest == spec.digest()

            # Async submit then explicit wait.
            spec2 = JobSpec(bench="lbm", profile="mini", seed=2)
            response = await _rpc(
                reader, writer, {"op": "submit", "spec": spec2.to_json()}
            )
            assert response["ok"]
            response = await _rpc(
                reader, writer,
                {"op": "wait", "digest": response["digest"], "timeout": 30},
            )
            assert response["ok"] and response["record"]["seed"] == 2

            # Resubmitting the first spec hits the content-addressed cache.
            response = await _rpc(
                reader, writer,
                {"op": "submit", "spec": spec.to_json(), "wait": True,
                 "timeout": 30},
            )
            assert response["ok"] and response["from_cache"]

            response = await _rpc(reader, writer, {"op": "status"})
            assert response["ok"]
            assert response["stats"]["cache_hits"] == 1
            assert response["stats"]["store"]["entries"] == 2

            response = await _rpc(
                reader, writer, {"op": "drain", "timeout": 30}
            )
            assert response["ok"] and response["drained"]

            # Malformed input gets an error response, not a dropped
            # connection.
            response = await _rpc(reader, writer, {"op": "no-such-op"})
            assert not response["ok"] and "unknown op" in response["error"]

            # The sync helper (the CLI's transport) works concurrently.
            sync_response = await asyncio.to_thread(
                request_sync, "127.0.0.1", server.port, {"op": "status"}
            )
            assert sync_response["ok"]

            response = await _rpc(reader, writer, {"op": "shutdown"})
            assert response["ok"] and response["stopping"]
            writer.close()
            await asyncio.wait_for(serve_task, timeout=10)

    asyncio.run(main())


def test_server_rejects_bad_spec():
    async def main() -> None:
        with ServiceClient(executor="inline", runner=stub_runner) as client:
            server = ServiceServer(client, port=0)
            await server.start()
            serve_task = asyncio.create_task(server.serve_forever())
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            response = await _rpc(
                reader, writer,
                {"op": "submit", "spec": {"profile": "not-a-profile"}},
            )
            assert not response["ok"]
            assert "profile" in response["error"]
            response = await _rpc(reader, writer, {"op": "shutdown"})
            assert response["ok"]
            writer.close()
            await asyncio.wait_for(serve_task, timeout=10)

    asyncio.run(main())
