"""Sanitizer plumbing: levels, cadence, observer forwarding, zero effect.

The negative (injected-corruption) tests live in
``test_sanitize_injected.py``; this file covers the machinery itself and
the *positive* guarantee: arming the sanitizer on a healthy run changes
nothing about the results.
"""

from __future__ import annotations

import pytest

from repro.alloc.policies import Policy
from repro.experiments.runner import run_benchmark, run_synthetic
from repro.obs import Observer
from repro.sanitize import (
    CHEAP_CHECK_EVERY,
    FULL_CHECK_EVERY,
    Checker,
    Sanitizer,
    SanitizerObserver,
    SanitizeViolation,
)


class RecordingChecker(Checker):
    layer = "test"

    def __init__(self):
        self.full_calls = 0
        self.fast_calls = 0

    def check(self):
        self.full_calls += 1

    def check_fast(self):
        self.fast_calls += 1


class TestSanitizer:
    def test_rejects_off_and_bad_cadence(self):
        with pytest.raises(ValueError):
            Sanitizer("off")
        with pytest.raises(ValueError):
            Sanitizer("bogus")
        with pytest.raises(ValueError):
            Sanitizer("full", check_every=0)

    def test_level_defaults(self):
        assert Sanitizer("full").check_every == FULL_CHECK_EVERY
        assert Sanitizer("cheap").check_every == CHEAP_CHECK_EVERY

    def test_tick_cadence_full_runs_full_walk(self):
        s = Sanitizer("full", check_every=10)
        c = RecordingChecker()
        s.add(c)
        for _ in range(35):
            s.tick()
        assert s.events_seen == 35
        assert s.sampled_checks == 3
        assert c.full_calls == 3 and c.fast_calls == 0

    def test_tick_cadence_cheap_runs_fast_subset(self):
        s = Sanitizer("cheap", check_every=5)
        c = RecordingChecker()
        s.add(c)
        for _ in range(12):
            s.tick()
        assert c.fast_calls == 2 and c.full_calls == 0

    def test_checkpoint_always_full(self):
        for level in ("cheap", "full"):
            s = Sanitizer(level)
            c = RecordingChecker()
            s.add(c)
            s.checkpoint("boot")
            assert c.full_calls == 1
            assert s.checkpoints == 1


class TestSanitizeViolation:
    def test_structured_fields_and_message(self):
        err = SanitizeViolation("cache", "set-overflow", "9 lines in set 3",
                                {"set": 3})
        assert isinstance(err, AssertionError)
        assert err.layer == "cache"
        assert err.invariant == "set-overflow"
        assert err.context == {"set": 3}
        assert str(err) == "[cache] set-overflow: 9 lines in set 3"

    def test_checker_fail_raises(self):
        class Broken(Checker):
            layer = "x"

            def check(self):
                self.fail("bad", "always", pfn=1)

        with pytest.raises(SanitizeViolation) as exc:
            Broken().check()
        assert exc.value.layer == "x"
        assert exc.value.context == {"pfn": 1}


class TestSanitizerObserver:
    def test_is_enabled_and_forwards_to_inner(self):
        inner = Observer()
        obs = SanitizerObserver.for_level("full", inner=inner, check_every=2)
        assert obs.enabled
        obs.span("compute", 0.0, 5.0)
        obs.instant("fault", 1.0)
        obs.maybe_sample(2.0)
        assert obs.sanitizer.events_seen == 3
        assert [e.name for e in inner.events] == ["compute", "fault"]

    def test_now_proxies_inner_clock(self):
        inner = Observer()
        obs = SanitizerObserver.for_level("cheap", inner=inner)
        obs.now = 42.0
        assert inner.now == 42.0
        assert obs.now == 42.0

    def test_checkpoint_and_finish_run_full_walks(self):
        obs = SanitizerObserver.for_level("full")
        c = RecordingChecker()
        obs.sanitizer.add(c)
        obs.checkpoint("section", 10.0)
        obs.finish(20.0)
        assert c.full_calls == 2
        assert obs.sanitizer.checkpoints == 2


class TestSanitizedRunsAreBitIdentical:
    """--sanitize must never change results, only abort corrupted runs."""

    def test_benchmark_records_identical_across_levels(self):
        base = run_benchmark("lbm", Policy.MEM_LLC, "16_threads_4_nodes",
                             profile="mini")
        for level in ("cheap", "full"):
            armed = run_benchmark("lbm", Policy.MEM_LLC, "16_threads_4_nodes",
                                  profile="mini", sanitize=level)
            assert armed == base, f"sanitize={level} perturbed the run"

    def test_synthetic_record_identical_and_checks_ran(self):
        base = run_synthetic(Policy.BUDDY, profile="mini")
        armed = run_synthetic(Policy.BUDDY, profile="mini", sanitize="full")
        assert armed == base
