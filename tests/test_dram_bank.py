"""Unit tests for the bank row-buffer state machine."""

import pytest

from repro.dram.bank import Bank, RowKind
from repro.dram.timing import DramTiming

T = DramTiming()


@pytest.fixture
def bank():
    return Bank(T)


class TestRowBuffer:
    def test_first_access_is_closed_miss(self, bank):
        start, service, kind = bank.access(row=5, now=0.0, is_write=False)
        assert kind is RowKind.MISS
        assert service == T.row_miss
        assert start == 0.0

    def test_same_row_hits(self, bank):
        bank.access(5, 0.0, False)
        _, service, kind = bank.access(5, 1000.0, False)
        assert kind is RowKind.HIT
        assert service == T.row_hit

    def test_other_row_conflicts(self, bank):
        bank.access(5, 0.0, False)
        _, service, kind = bank.access(6, 1000.0, False)
        assert kind is RowKind.CONFLICT
        assert service == T.row_conflict

    def test_interleaved_rows_thrash(self, bank):
        """Two tasks alternating rows turn each other's hits into conflicts
        (the paper's Fig. 8 scenario)."""
        bank.access(1, 0.0, False)
        kinds = []
        t = 1000.0
        for row in (2, 1, 2, 1):
            _, _, kind = bank.access(row, t, False)
            kinds.append(kind)
            t += 1000.0
        assert kinds == [RowKind.CONFLICT] * 4

    def test_stats_counts(self, bank):
        bank.access(1, 0.0, False)
        bank.access(1, 1000.0, False)
        bank.access(2, 2000.0, False)
        assert (bank.misses, bank.hits, bank.conflicts) == (1, 1, 1)
        assert bank.total_accesses == 3
        bank.reset_stats()
        assert bank.total_accesses == 0


class TestQueueing:
    def test_back_to_back_requests_queue(self, bank):
        start1, service1, _ = bank.access(1, 0.0, False)
        # Second request arrives while the bank is still busy.
        start2, _, _ = bank.access(1, 1.0, False)
        assert start2 == start1 + service1

    def test_write_recovery_extends_occupancy(self, bank):
        bank.access(1, 0.0, True)
        start2, _, _ = bank.access(1, 0.0, False)
        assert start2 == T.row_miss + T.write_recovery

    def test_idle_bank_serves_immediately(self, bank):
        bank.access(1, 0.0, False)
        start, _, _ = bank.access(1, 10_000.0, False)
        assert start == 10_000.0


class TestRefresh:
    def test_refresh_closes_row(self, bank):
        bank.access(7, 0.0, False)
        # Crossing a tREFI boundary flushes the row buffer.
        _, _, kind = bank.access(7, T.refresh_interval + 1.0, False)
        assert kind is RowKind.MISS

    def test_no_refresh_within_interval(self, bank):
        bank.access(7, 10.0, False)
        _, _, kind = bank.access(7, T.refresh_interval * 0.5, False)
        assert kind is RowKind.HIT


class TestWriteback:
    def test_writeback_occupies_but_keeps_row(self, bank):
        bank.access(3, 0.0, False)
        busy_before = bank.busy_until
        bank.writeback(9, busy_before)
        assert bank.busy_until > busy_before
        # Posted writes don't steal the open row (write-queue model).
        assert bank.open_row == 3

    def test_writeback_occupancy_scaled(self, bank):
        t0 = bank.busy_until
        bank.writeback(1, 0.0)
        occupancy = bank.busy_until - max(t0, 0.0)
        full = (T.row_miss + T.write_recovery)
        assert occupancy == pytest.approx(full * T.writeback_occupancy_scale)


class TestTimingValidation:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            DramTiming(row_hit=50, row_miss=40)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DramTiming(ctrl_overhead=-1)

    def test_refresh_positive(self):
        with pytest.raises(ValueError):
            DramTiming(refresh_interval=0)

    def test_writeback_scale_range(self):
        with pytest.raises(ValueError):
            DramTiming(writeback_occupancy_scale=1.5)
