"""Smoke test for the ``python -m repro.experiments`` CLI."""

from repro.experiments.__main__ import main


def test_cli_fig10_only(tmp_path, capsys):
    rc = main([
        "--profile", "mini", "--reps", "1",
        "--out", str(tmp_path), "--skip-sweep",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fig. 10" in out
    assert (tmp_path / "fig10.csv").exists()
    header = (tmp_path / "fig10.csv").read_text().splitlines()[0]
    assert header.startswith("bench,policy")
