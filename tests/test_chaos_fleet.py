"""Chaos campaigns against the worker fleet (``executor="fleet"``).

The degradation invariant extends unchanged to the distributed plane:
with workers being killed, hung, and disconnected mid-lease, every job
must still finish with a record **bit-identical** to the fault-free
*inline* baseline or raise a typed :class:`ServiceError` — never a
hang, never silently-wrong data.  Because the baseline is the inline
executor, a passing case simultaneously proves fleet results match
serial ones under fire.
"""

from __future__ import annotations

import pytest

from repro.faultline import NO_FAULTS, FaultPlan, FaultRule
from repro.faultline.campaign import (
    FLEET_CAMPAIGN_SITES,
    FLEET_WORKERS,
    baseline_records,
    campaign_specs,
    random_fleet_plan,
    run_campaign,
    run_case,
)


@pytest.fixture(scope="module")
def inline_baseline():
    """One fault-free inline reference shared by every fleet case."""
    specs = campaign_specs()
    return specs, baseline_records(specs, "inline")


def test_fleet_plan_generation_is_deterministic_and_bounded():
    for index in range(32):
        plan = random_fleet_plan(seed=5, index=index)
        assert plan == random_fleet_plan(seed=5, index=index)
        assert plan.rules, "a case with no rules tests nothing"
        for rule in plan.rules:
            assert rule.site in FLEET_CAMPAIGN_SITES
            if rule.site == "fleet.worker.kill":
                # The fleet must never empty: zero workers can only
                # strand jobs, not degrade gracefully.
                assert rule.max_fires is not None
                assert rule.max_fires < FLEET_WORKERS
            if rule.site == "fleet.worker.hang":
                assert rule.arg is not None and rule.arg <= 1.0
    assert (random_fleet_plan(seed=5, index=0)
            != random_fleet_plan(seed=6, index=0))


def test_fault_free_fleet_matches_inline_baseline(inline_baseline):
    """NO_FAULTS on the fleet reproduces inline records bit-for-bit."""
    specs, baseline = inline_baseline
    assert run_case(NO_FAULTS, specs, baseline, executor="fleet") is None


def test_fleet_survives_maximum_worker_kills(inline_baseline):
    """Killing all-but-one worker at probability 1 must still drain."""
    specs, baseline = inline_baseline
    plan = FaultPlan(seed=99, rules=(
        FaultRule(site="fleet.worker.kill", probability=1.0,
                  max_fires=FLEET_WORKERS - 1),
    ))
    assert run_case(plan, specs, baseline, executor="fleet") is None


def test_fleet_survives_hang_and_disconnect_mix(inline_baseline):
    """Stale results and dropped leases re-queue transparently."""
    specs, baseline = inline_baseline
    plan = FaultPlan(seed=17, rules=(
        FaultRule(site="fleet.worker.hang", probability=0.5,
                  max_fires=2, arg=0.4),
        FaultRule(site="fleet.worker.disconnect", probability=0.5,
                  max_fires=2),
    ))
    assert run_case(plan, specs, baseline, executor="fleet") is None


def test_fleet_campaign_invariant_holds():
    """A short seeded fleet campaign: every random case must hold."""
    result = run_campaign(budget_s=60.0, seed=7, max_cases=2,
                          executor="fleet")
    assert result.cases_run == 2
    assert result.ok, (
        f"case {result.failure.case_index}: {result.failure.detail}\n"
        f"plan: {result.failure.plan.dumps()}"
    )
