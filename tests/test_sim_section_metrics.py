"""Per-section metrics: structure and the §III-C first-touch observation."""

import pytest

from repro.alloc.policies import Policy
from repro.core.session import ColoredTeam
from repro.core.tintmalloc import TintMalloc
from repro.kernel.kernel import Kernel
from repro.machine.presets import tiny_machine
from repro.sim.engine import Engine, MemorySystem
from repro.util.rng import RngStream
from repro.util.units import KIB
from repro.workloads.base import SpmdSpec, build_spmd_program

SPEC = SpmdSpec(
    name="probe", per_thread_bytes=32 * KIB, shared_bytes=4 * KIB,
    master_init_fraction=0.1, passes=2, compute_sections=2,
    pattern="stream", serial_accesses=20,
)


@pytest.fixture
def run():
    machine = tiny_machine()
    kernel = Kernel(machine)
    tm = TintMalloc(kernel=kernel)
    team = ColoredTeam.create(tm, [0, 1, 2, 3], Policy.MEM_LLC)
    memory = MemorySystem.for_machine(machine)
    program = build_spmd_program(SPEC, team, RngStream(0))
    return Engine(team, memory).run(program)


class TestSectionMetrics:
    def test_sections_cover_runtime(self, run):
        assert run.sections[0].start == 0.0
        for prev, cur in zip(run.sections, run.sections[1:]):
            assert cur.start == prev.end
        assert run.sections[-1].end == run.runtime

    def test_kinds_and_labels(self, run):
        assert run.section("serial-init").kind == "serial"
        assert run.section("parallel-init").kind == "parallel"
        assert run.section("compute[0]").kind == "parallel"
        with pytest.raises(KeyError):
            run.section("nope")

    def test_serial_sections_have_no_idle(self, run):
        for s in run.sections:
            if s.kind == "serial":
                assert s.idle == 0.0

    def test_idle_sums_to_thread_totals(self, run):
        assert sum(s.idle for s in run.sections) == pytest.approx(
            run.total_idle
        )

    def test_faults_partition_across_sections(self, run):
        total = sum(t.faults for t in run.threads)
        assert sum(s.faults for s in run.sections) == total

    def test_paper_iiic_init_pays_more_per_access(self, run):
        """§III-C: colored allocation overhead concentrates in the
        initialization phase — the init section costs more per access
        (fault + refill charges) than steady-state compute."""
        init = run.section("parallel-init")
        compute = run.section("compute[1]")  # warm section
        assert init.faults > compute.faults
        assert init.ns_per_access > compute.ns_per_access
