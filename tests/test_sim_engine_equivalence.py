"""Fast path == reference path, bit for bit.

The engine's batched fast path (`Engine._run_section_fast`) must produce
*bit-identical* results to the straightforward reference loop
(`Engine._run_section_reference`) — not approximately equal: the same
floats in every latency sum, the same integers in every counter.  These
tests run real fig. 10/fig. 11 workloads through both paths (and through
the traced path with a recording observer) and compare complete metric
snapshots with exact equality.

If one of these tests fails after an engine/hierarchy/DRAM change, the
fast path has drifted from the model's semantics; fix the drift, never
loosen the comparison.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.alloc.policies import Policy
from repro.experiments.configs import CONFIGS
from repro.experiments.runner import (
    _fresh_environment,
    profile_machine,
    profile_scale,
)
from repro.obs import Observer
from repro.sim.metrics import RunMetrics
from repro.util.rng import RngStream
from repro.workloads.base import build_spmd_program
from repro.workloads.registry import get_workload
from repro.workloads.synthetic import SyntheticSpec, build_synthetic_program

CONFIG = "16_threads_4_nodes"
PROFILE = "mini"


def snapshot(metrics: RunMetrics) -> dict:
    """Everything a run produced, as plain comparable values."""
    return {
        "summary": metrics.summary(),
        "runtime": metrics.runtime,
        "threads": [dataclasses.asdict(t) for t in metrics.threads],
        "sections": [dataclasses.asdict(s) for s in metrics.sections],
        "dram": dataclasses.asdict(metrics.dram),
        "cache": {
            name: (lvl.hits, lvl.misses) for name, lvl in metrics.cache.items()
        },
    }


def run_fig11(bench: str, policy: Policy, *, fast: bool, traced: bool = False):
    observer = Observer() if traced else None
    kwargs = {"observer": observer} if observer is not None else {}
    team, engine = _fresh_environment(
        CONFIGS[CONFIG], policy, profile_machine(PROFILE), age_seed=0, **kwargs
    )
    engine.fast_path = fast
    spec = get_workload(bench).scaled(profile_scale(PROFILE))
    program = build_spmd_program(spec, team, RngStream(0, bench, CONFIG))
    return snapshot(engine.run(program))


def run_fig10(policy: Policy, *, fast: bool):
    team, engine = _fresh_environment(
        CONFIGS[CONFIG], policy, profile_machine(PROFILE), age_seed=0
    )
    engine.fast_path = fast
    spec = SyntheticSpec(per_thread_bytes=64 * 1024)
    program = build_synthetic_program(spec, team)
    return snapshot(engine.run(program))


@pytest.mark.parametrize("bench", ["lbm", "blackscholes"])
@pytest.mark.parametrize("policy", [Policy.BUDDY, Policy.MEM_LLC])
def test_fig11_fast_equals_reference(bench, policy):
    fast = run_fig11(bench, policy, fast=True)
    ref = run_fig11(bench, policy, fast=False)
    assert fast == ref


@pytest.mark.parametrize("policy", [Policy.BUDDY, Policy.MEM_LLC])
def test_fig10_synthetic_fast_equals_reference(policy):
    fast = run_fig10(policy, fast=True)
    ref = run_fig10(policy, fast=False)
    assert fast == ref


def test_traced_path_matches_reference():
    """A recording observer must not perturb the simulation itself."""
    ref = run_fig11("lbm", Policy.MEM_LLC, fast=False)
    traced = run_fig11("lbm", Policy.MEM_LLC, fast=True, traced=True)
    assert traced == ref


# ----------------------------------------------------------- platform grid
PLATFORM_GRID = (
    "opteron_6128_scaled", "opteron_4s", "modern_8ch", "bigbank_4n",
    "disagg_2n",
)


def run_platform(preset: str, policy: Policy, *, fast: bool,
                 traced: bool = False):
    from repro.experiments.configs import configs_for
    from repro.machine.presets import platform
    from repro.util.units import MIB

    machine = platform(preset, 256 * MIB)
    config = next(iter(configs_for(machine.topology).values()))
    observer = Observer() if traced else None
    kwargs = {"observer": observer} if observer is not None else {}
    team, engine = _fresh_environment(
        config, policy, machine, age_seed=0, **kwargs
    )
    engine.fast_path = fast
    spec = get_workload("lbm").scaled(profile_scale(PROFILE))
    program = build_spmd_program(spec, team, RngStream(0, "lbm", config.name))
    return snapshot(engine.run(program))


@pytest.mark.parametrize("preset", PLATFORM_GRID)
@pytest.mark.parametrize("policy", [Policy.BUDDY, Policy.MEM_LLC])
def test_platform_fast_equals_reference(preset, policy):
    """Bit identity holds on every preset of the platform family."""
    fast = run_platform(preset, policy, fast=True)
    ref = run_platform(preset, policy, fast=False)
    assert fast == ref


@pytest.mark.parametrize("preset", ["modern_8ch", "disagg_2n"])
def test_platform_traced_matches_reference(preset):
    """The traced path agrees with the reference loop off-Opteron too."""
    ref = run_platform(preset, Policy.MEM_LLC, fast=False)
    traced = run_platform(preset, Policy.MEM_LLC, fast=True, traced=True)
    assert traced == ref


def test_disagg_disables_batched_plan():
    """A disaggregated preset must fall back to the scalar replay loop —
    the batched precompute cannot model DRAM-cache state."""
    from repro.experiments.configs import configs_for
    from repro.machine.presets import platform
    from repro.util.units import MIB

    machine = platform("disagg_2n", 256 * MIB)
    config = next(iter(configs_for(machine.topology).values()))
    team, engine = _fresh_environment(
        config, Policy.BUDDY, machine, age_seed=0
    )
    spec = get_workload("lbm").scaled(profile_scale(PROFILE))
    program = build_spmd_program(
        spec, team, RngStream(0, "lbm", config.name)
    )
    section = next(s for s in program.sections if s.kind == "parallel")
    assert engine._batch_plan(section) is None


def test_fast_path_flag_dispatch():
    """fast_path=False must actually select the reference loop."""
    team, engine = _fresh_environment(
        CONFIGS[CONFIG], Policy.BUDDY, profile_machine(PROFILE), age_seed=0
    )
    assert engine.fast_path  # default on
    engine.fast_path = False
    seen = []
    engine._run_section_reference = lambda *a, **k: seen.append("ref") or {}
    engine._run_section(
        next(iter(build_spmd_program(
            get_workload("blackscholes").scaled(profile_scale(PROFILE)),
            team, RngStream(0, "blackscholes", CONFIG),
        ).sections)),
        0.0,
        RunMetrics(name="x", policy="buddy", nthreads=team.nthreads),
    )
    assert seen == ["ref"]
