"""Hypothesis properties for the search genome and its operators.

The drivers rely on three contracts without ever re-checking them:
operators are *closed* (mutate/crossover output is always valid for the
preset), canonical serialization is *byte-stable* (same genome → same
bytes in any process, since cache keys derive from it), and equal
genomes produce equal JobSpec digests (the dedup/cache identity).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.policies import Policy
from repro.search.space import Genome, SearchSpace
from repro.service.jobs import JobSpec
from repro.util.rng import RngStream

CONFIG = "4_threads_4_nodes"
PROFILE = "mini"


@pytest.fixture(scope="module")
def space() -> SearchSpace:
    return SearchSpace(CONFIG, PROFILE)


@st.composite
def genomes(draw, space: SearchSpace):
    """A random valid genome, optionally pre-scrambled by mutations."""
    seed = draw(st.integers(0, 2**31 - 1))
    steps = draw(st.integers(0, 4))
    rng = RngStream(seed, "prop")
    genome = space.random_genome(rng.child("base"))
    for i in range(steps):
        genome = space.mutate(genome, rng.child("step", i))
    return genome


class TestOperatorClosure:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_random_and_mutate_always_valid(self, data):
        space = SearchSpace(CONFIG, PROFILE)
        genome = data.draw(genomes(space))
        space.validate(genome)
        mutated = space.mutate(
            genome, RngStream(data.draw(st.integers(0, 2**31 - 1)), "m")
        )
        space.validate(mutated)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_crossover_always_valid(self, data):
        space = SearchSpace(CONFIG, PROFILE)
        a = data.draw(genomes(space))
        b = data.draw(genomes(space))
        child = space.crossover(
            a, b, RngStream(data.draw(st.integers(0, 2**31 - 1)), "x")
        )
        space.validate(child)

    def test_paper_policies_encode_and_validate(self, space):
        for policy in Policy:
            space.validate(space.paper_genome(policy))

    def test_grid_recipes_all_validate(self, space):
        grid = space.grid()
        assert len(grid) >= 8
        digests = set()
        for _label, genome in grid:
            space.validate(genome)
            digests.add(genome.digest())
        assert len(digests) == len(grid), "grid must be digest-deduplicated"


class TestCanonicalSerialization:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_round_trip_is_identity(self, data):
        space = SearchSpace(CONFIG, PROFILE)
        genome = data.draw(genomes(space))
        back = Genome.from_json(genome.to_json())
        assert back == genome
        assert back.canonical() == genome.canonical()
        assert back.digest() == genome.digest()

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_gene_order_and_duplicates_do_not_matter(self, data):
        space = SearchSpace(CONFIG, PROFILE)
        genome = data.draw(genomes(space))
        scrambled = Genome(
            mem=tuple(tuple(reversed(g + g[:1])) for g in genome.mem),
            llc=tuple(tuple(reversed(g + g[:1])) for g in genome.llc),
            aged=genome.aged,
            hugepages=genome.hugepages,
        )
        assert scrambled.canonical() == genome.canonical()

    def test_canonical_is_byte_stable_across_processes(self, space):
        genome = space.mutate(
            space.paper_genome(Policy.MEM_LLC), RngStream(5, "t")
        )
        script = (
            "import sys, json\n"
            "from repro.search.space import Genome\n"
            "g = Genome.from_json(json.loads(sys.stdin.read()))\n"
            "sys.stdout.write(g.canonical())\n"
        )
        src = Path(__file__).resolve().parents[1] / "src"
        out = subprocess.run(
            [sys.executable, "-c", script],
            input=genome.canonical(), capture_output=True, text=True,
            check=True, env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        ).stdout
        assert out == genome.canonical()

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_equal_genomes_give_equal_jobspec_digests(self, data):
        space = SearchSpace(CONFIG, PROFILE)
        genome = data.draw(genomes(space))
        twin = Genome.from_json(json.loads(genome.canonical()))
        spec_a = JobSpec(bench="lbm", policy=genome.phenotype(),
                         config=CONFIG, profile=PROFILE)
        spec_b = JobSpec(bench="lbm", policy=twin.phenotype(),
                         config=CONFIG, profile=PROFILE)
        assert spec_a.digest() == spec_b.digest()

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_distinct_genomes_give_distinct_digests(self, data):
        space = SearchSpace(CONFIG, PROFILE)
        a = data.draw(genomes(space))
        b = data.draw(genomes(space))
        if a.canonical() == b.canonical():
            return
        assert a.digest() != b.digest()
        spec_a = JobSpec(bench="lbm", policy=a.phenotype(),
                         config=CONFIG, profile=PROFILE)
        spec_b = JobSpec(bench="lbm", policy=b.phenotype(),
                         config=CONFIG, profile=PROFILE)
        assert spec_a.digest() != spec_b.digest()


class TestSeedDeterminism:
    def test_same_seed_same_genome_sequence(self, space):
        def sequence(seed: int) -> list[str]:
            rng = RngStream(seed, "det")
            out = []
            g = space.random_genome(rng.child("g"))
            for i in range(10):
                g = space.mutate(g, rng.child("m", i))
                out.append(g.digest())
            return out

        assert sequence(123) == sequence(123)
        assert sequence(123) != sequence(124)

    def test_validate_rejects_wrong_thread_count(self, space):
        genome = space.paper_genome(Policy.MEM_LLC)
        wrong = Genome(mem=genome.mem[:-1], llc=genome.llc[:-1])
        with pytest.raises(ValueError, match="threads"):
            space.validate(wrong)

    def test_repair_fixes_incompatible_pairs(self, space):
        # Pick an (all-banks, one-llc) gene pair that is incompatible
        # for thread 0, then check mutate's repair restores validity.
        mapping = space.mapping
        llc = 0
        banks = [b for b in space.local_banks[0]
                 if not mapping.colors_compatible(b, llc)]
        if not banks:
            pytest.skip("preset has no incompatible pair to provoke")
        broken = Genome(
            mem=(tuple(banks[:2]),) + space.paper_genome(Policy.MEM_LLC).mem[1:],
            llc=((llc,),) + space.paper_genome(Policy.MEM_LLC).llc[1:],
        )
        repaired = space._repair(broken)
        space.validate(repaired)


class TestNonOpteronPresets:
    """The genome space must close over any platform-family preset."""

    @pytest.fixture(scope="class", params=["modern_8ch", "bigbank_4n",
                                           "disagg_2n"])
    def platform_space(self, request) -> SearchSpace:
        from repro.experiments.configs import configs_for
        from repro.machine.presets import platform
        from repro.util.units import MIB

        machine = platform(request.param, 256 * MIB)
        config = next(iter(configs_for(machine.topology).values()))
        return SearchSpace(config.name, PROFILE, machine=machine,
                           cores=list(config.cores))

    def test_paper_policies_encode_and_validate(self, platform_space):
        for policy in (Policy.BUDDY, Policy.MEM, Policy.LLC, Policy.MEM_LLC):
            platform_space.validate(platform_space.paper_genome(policy))

    def test_operators_stay_closed(self, platform_space):
        rng = RngStream(5, "plat")
        g = platform_space.random_genome(rng.child("g"))
        platform_space.validate(g)
        for i in range(8):
            g = platform_space.mutate(g, rng.child("m", i))
            platform_space.validate(g)

    def test_grid_recipes_all_validate(self, platform_space):
        grid = platform_space.grid()
        assert grid
        for _label, genome in grid:
            platform_space.validate(genome)

    def test_machine_overrides_profile_preset(self, platform_space):
        assert platform_space.machine.topology.name != "opteron_6128_scaled"
        assert platform_space.nthreads == len(platform_space.cores)
