"""Property tests pinning ``decode_batch`` to scalar ``frame_decode``.

The batched engine plans whole sections through
:meth:`AddressMapping.decode_batch`; its bit-identity contract is that
every element of every output array equals the corresponding scalar
:meth:`AddressMapping.frame_decode` field.  These tests enforce that
across all machine presets with hypothesis-generated frame batches, plus
the empty-batch and single-element edge cases the vectorized path is
most likely to get wrong.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.machine.presets import (
    opteron_4s,
    opteron_6128,
    opteron_6128_scaled,
    tiny_machine,
)

PRESETS = {
    "opteron_6128": opteron_6128,
    "opteron_6128_scaled": opteron_6128_scaled,
    "opteron_4s": opteron_4s,
    "tiny_machine": tiny_machine,
}


@pytest.fixture(params=sorted(PRESETS), name="mapping")
def mapping_fixture(request):
    return PRESETS[request.param]().mapping


def assert_matches_scalar(mapping, pfns):
    """Every batch field must equal the scalar decode, element-wise."""
    batch = mapping.decode_batch(np.asarray(pfns, dtype=np.int64))
    assert len(batch) == len(pfns)
    for i, pfn in enumerate(pfns):
        scalar = mapping.frame_decode(pfn)
        assert batch.pfns[i] == scalar.pfn
        assert batch.node[i] == scalar.node
        assert batch.channel[i] == scalar.channel
        assert batch.rank[i] == scalar.rank
        assert batch.bank[i] == scalar.bank
        assert batch.bank_color[i] == scalar.bank_color
        assert batch.llc_color[i] == scalar.llc_color


class TestDecodeBatchProperties:
    # The mapping fixture is frozen (decode memo aside), so reusing it
    # across generated examples is sound.
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_matches_scalar_on_random_batches(self, mapping, data):
        pfns = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=mapping.num_frames - 1),
                min_size=1,
                max_size=64,
            )
        )
        assert_matches_scalar(mapping, pfns)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_single_element(self, mapping, data):
        pfn = data.draw(
            st.integers(min_value=0, max_value=mapping.num_frames - 1)
        )
        assert_matches_scalar(mapping, [pfn])

    def test_empty_batch(self, mapping):
        batch = mapping.decode_batch(np.asarray([], dtype=np.int64))
        assert len(batch) == 0
        for field in (
            batch.pfns, batch.node, batch.channel, batch.rank,
            batch.bank, batch.bank_color, batch.llc_color,
        ):
            assert field.size == 0

    def test_boundary_frames(self, mapping):
        """First and last frames of physical memory decode correctly."""
        assert_matches_scalar(mapping, [0, mapping.num_frames - 1])

    def test_duplicate_frames_decode_identically(self, mapping):
        pfn = mapping.num_frames // 2
        batch = mapping.decode_batch(np.asarray([pfn, pfn], dtype=np.int64))
        assert batch.bank_color[0] == batch.bank_color[1]
        assert batch.llc_color[0] == batch.llc_color[1]

    def test_out_of_range_rejected(self, mapping):
        with pytest.raises(ValueError):
            mapping.decode_batch(
                np.asarray([mapping.num_frames], dtype=np.int64)
            )
        with pytest.raises(ValueError):
            mapping.decode_batch(np.asarray([-1], dtype=np.int64))
