"""Parallel sweeps must be bit-identical to sequential ones.

``sweep()`` fans independent runs out over a ``ProcessPoolExecutor``;
every worker rebuilds its machine from seeds, so the records must not
depend on worker count, scheduling, or fork order.  This pins the
pickling path too: a ``SweepJob`` field that stops pickling cleanly
(e.g. one holding a live simulator object) breaks here, not in a user's
eight-hour sweep.
"""

from __future__ import annotations

from repro.alloc.policies import Policy
from repro.experiments.runner import sweep

BENCHES = ["lbm", "blackscholes"]
POLICIES = [Policy.BUDDY, Policy.MEM_LLC]
CONFIGS = ["4_threads_4_nodes"]


def _normalized(records):
    """Order-normalize: keyed by (bench, policy, config, rep)."""
    out = {}
    for r in records:
        key = (r.bench, r.policy, r.config, r.rep)
        assert key not in out, f"duplicate record {key}"
        out[key] = r
    return out


def test_parallel_sweep_matches_sequential():
    kwargs = dict(
        benches=BENCHES, policies=POLICIES, configs=CONFIGS,
        reps=2, profile="mini", seed=3,
    )
    sequential = sweep(parallel=False, **kwargs)
    pooled = sweep(parallel=True, max_workers=4, **kwargs)
    assert len(sequential) == len(pooled) == 8
    seq, par = _normalized(sequential), _normalized(pooled)
    assert seq.keys() == par.keys()
    for key in seq:
        # RunRecord is a frozen dataclass of plain floats/ints/tuples, so
        # == here is exact, field-for-field bit-identity.
        assert seq[key] == par[key], f"divergent record for {key}"


def test_sweep_is_seed_deterministic():
    """Same seed -> same records; different seed -> different traces."""
    kwargs = dict(
        benches=["lbm"], policies=[Policy.MEM_LLC],
        configs=CONFIGS, reps=1, profile="mini",
    )
    a = sweep(seed=5, parallel=False, **kwargs)
    b = sweep(seed=5, parallel=False, **kwargs)
    c = sweep(seed=6, parallel=False, **kwargs)
    assert a == b
    assert a != c
