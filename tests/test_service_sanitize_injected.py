"""Injected corruption must surface through the service path (satellite).

The corrupting runner arms the sanitizer at the level carried by the
JobSpec (proving ``--sanitize`` survives the spec round trip into a
worker), injects one cache corruption mid-job, and the resulting
SanitizeViolation must come back as a structured job failure — through
a real child process for the process executor — without damaging the
scheduler.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc.policies import Policy
from repro.core.session import ColoredTeam
from repro.core.tintmalloc import TintMalloc
from repro.kernel.kernel import Kernel
from repro.machine.presets import tiny_machine
from repro.sanitize import SanitizerObserver
from repro.service import JobFailed, JobSpec, Scheduler
from repro.sim.barrier import Program, Section
from repro.sim.engine import Engine, MemorySystem
from repro.sim.trace import Trace
from repro.util.units import KIB, MIB


def corrupting_sanitized_runner(spec: JobSpec) -> dict:
    """Run a tiny sanitized job and corrupt the LLC between programs.

    The sanitizer level comes from the spec — exactly the field that
    must survive serialization into the worker.
    """
    assert spec.sanitize != "off", "spec lost its sanitize level in transit"
    observer = SanitizerObserver.for_level(spec.sanitize, check_every=64)
    machine = tiny_machine(8 * MIB)
    kernel = Kernel(machine, aged=True, age_seed=1, observer=observer)
    tm = TintMalloc(kernel=kernel)
    team = ColoredTeam.create(tm, [0], Policy.MEM_LLC)
    memory = MemorySystem.for_machine(machine, observer=observer)
    engine = Engine(team, memory, observer=observer)
    observer.sanitizer.attach_engine(engine)

    def run_pass(label: str) -> None:
        va = team.handles[0].malloc(32 * KIB, label=label)
        n = 1024
        vaddrs = va + (np.arange(n, dtype=np.int64) % 512) * 64
        trace = Trace(vaddrs=vaddrs, writes=np.ones(n, dtype=bool),
                      think_ns=1.0, label=label)
        engine.run(Program(
            sections=[Section(kind="parallel", traces={0: trace},
                              label=label)],
            nthreads=1, name=label,
        ))

    run_pass("healthy")
    llc = memory.hierarchy.llc
    idx, entries = next((i, s) for i, s in enumerate(llc._sets) if len(s))
    line, dirty = next(iter(entries.items()))
    del entries[line]
    llc._sets[(idx + 1) % llc.num_sets][line] = dirty  # misfiled line
    run_pass("after-corruption")  # sanitizer must abort this
    return {"should": "never get here"}


@pytest.mark.parametrize("executor", ["inline", "process"])
def test_injected_corruption_fails_the_job(executor):
    spec = JobSpec(bench="lbm", profile="mini", sanitize="full",
                   max_retries=1)
    with Scheduler(executor=executor, runner=corrupting_sanitized_runner,
                   backoff_base_s=0.01) as sched:
        handle = sched.submit(spec)
        with pytest.raises(JobFailed) as exc:
            handle.result(60)
        # The violation is attributed, not swallowed: layer + invariant
        # travel back in the error message even across the process
        # boundary.
        assert "SanitizeViolation" in str(exc.value)
        assert "cache" in str(exc.value)
        # Deterministic corruption: every attempt failed the same way.
        assert [a["outcome"] for a in exc.value.attempts] == ["err", "err"]
        # The scheduler itself is unharmed: a healthy job still runs.
        stats = sched.stats()
    assert stats["failed"] == 1
    assert stats["crashes"] == 0  # a violation is an error, not a crash


def test_healthy_sanitized_job_completes(tmp_path):
    """Same runner family, no corruption: the sanitize level arms real
    checkers inside a real worker process and the job completes."""

    spec = JobSpec(bench="lbm", policy="mem+llc",
                   config="4_threads_4_nodes", profile="mini",
                   sanitize="cheap", seed=3)
    with Scheduler(executor="process") as sched:
        record = sched.submit(spec).result(120)
    assert record["bench"] == "lbm"
    assert record["faults"] > 0
