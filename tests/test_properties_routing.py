"""Property tests for the consistent-hash ring (fleet routing).

Hypothesis pins the three properties the fleet's correctness rests on:

* **determinism** — assignment is a pure function of (ring membership,
  key): independently built rings with the same nodes agree on every
  key, regardless of add order.
* **stability under growth** — adding a node only *steals* keys for
  the new node; no key moves between two surviving nodes.
* **bounded movement** — removing a node relocates exactly that node's
  keys; everything else stays put.  Together these bound churn when
  workers join/leave the fleet mid-load.

Plus distribution sanity: with enough virtual nodes, no single node
owns everything for a spread of keys.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.ring import HashRing

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
)
node_sets = st.sets(names, min_size=1, max_size=8)
keys = st.lists(
    st.binary(min_size=1, max_size=32).map(
        lambda b: hashlib.sha256(b).hexdigest()
    ),
    min_size=1, max_size=64, unique=True,
)


def _ring(nodes, replicas: int = 64) -> HashRing:
    ring = HashRing(replicas=replicas)
    for node in nodes:
        ring.add(node)
    return ring


@given(nodes=node_sets, ks=keys)
@settings(max_examples=60, deadline=None)
def test_assignment_is_deterministic_and_order_free(nodes, ks):
    forward = _ring(sorted(nodes))
    backward = _ring(sorted(nodes, reverse=True))
    for key in ks:
        owner = forward.assign(key)
        assert owner in nodes
        assert backward.assign(key) == owner


@given(nodes=node_sets, ks=keys, new=names)
@settings(max_examples=60, deadline=None)
def test_adding_a_node_only_steals_keys_for_itself(nodes, ks, new):
    if new in nodes:
        return
    before = _ring(nodes).assignments(ks)
    grown = _ring(nodes)
    grown.add(new)
    after = grown.assignments(ks)
    moved = {k for k in ks if before[k] != after[k]}
    for key in moved:
        assert after[key] == new, (
            f"key {key[:8]} moved {before[key]} -> {after[key]}, "
            f"not to the new node {new}"
        )


@given(nodes=st.sets(names, min_size=2, max_size=8), ks=keys)
@settings(max_examples=60, deadline=None)
def test_removing_a_node_only_moves_its_own_keys(nodes, ks):
    victim = sorted(nodes)[0]
    before = _ring(nodes).assignments(ks)
    shrunk = _ring(nodes)
    shrunk.remove(victim)
    after = shrunk.assignments(ks)
    for key in ks:
        if before[key] == victim:
            assert after[key] != victim
            assert after[key] in nodes
        else:
            assert after[key] == before[key], (
                f"key {key[:8]} owned by surviving {before[key]} moved"
            )


@given(nodes=node_sets, ks=keys)
@settings(max_examples=60, deadline=None)
def test_idempotent_membership(nodes, ks):
    ring = _ring(nodes)
    baseline = ring.assignments(ks)
    for node in nodes:
        ring.add(node)  # double-add must not shift any vnode points
    assert ring.assignments(ks) == baseline
    ring.remove("never-added")  # unknown removal is a no-op
    assert ring.assignments(ks) == baseline


def test_distribution_spreads_over_nodes():
    ring = _ring([f"w{i}" for i in range(4)], replicas=64)
    ks = [hashlib.sha256(str(i).encode()).hexdigest() for i in range(512)]
    owners = ring.assignments(ks)
    counts = {node: 0 for node in ring.nodes}
    for owner in owners.values():
        counts[owner] += 1
    assert all(count > 0 for count in counts.values()), counts
    assert max(counts.values()) < len(ks) * 0.6, (
        f"one node owns most keys: {counts}"
    )


def test_empty_ring_raises():
    ring = HashRing()
    with pytest.raises(LookupError):
        ring.assign("deadbeef")
    ring.add("only")
    assert ring.assign("deadbeef") == "only"
    ring.remove("only")
    with pytest.raises(LookupError):
        ring.assign("deadbeef")
