"""Unit tests for the claims evaluator and EXPERIMENTS.md generator."""

import pytest

from repro.experiments.claims import (
    all_hold,
    evaluate_fig10_claims,
    evaluate_main_claims,
)
from repro.experiments.experiments_md import write_experiments_md
from repro.experiments.report import read_csv, write_csv
from repro.experiments.runner import RunRecord


def record(bench, policy, runtime, idle=None, config="16_threads_4_nodes",
           threads=16, spread=0.2):
    idle = idle if idle is not None else runtime / 10
    per = runtime / threads
    rts = tuple(
        per * (1 + spread * i / max(1, threads - 1)) for i in range(threads)
    )
    return RunRecord(
        bench=bench, policy=policy, config=config, rep=0,
        runtime=runtime, parallel_runtime=runtime * 0.9,
        serial_runtime=runtime * 0.1, total_idle=idle,
        thread_runtimes=rts,
        thread_idles=tuple(idle / threads * (threads - i) for i in range(threads)),
        remote_fraction=0.1, row_hit_rate=0.5, row_conflicts=1,
        llc_miss_rate=0.5, dram_accesses=100, faults=5,
    )


def paper_shaped_records():
    """A synthetic record set in which every paper claim holds."""
    out = []
    for bench in ("lbm", "art", "equake", "bodytrack", "freqmine",
                  "blackscholes"):
        out += [
            record(bench, "buddy", 100.0, idle=40.0, spread=0.5),
            record(bench, "bpm", 140.0, idle=80.0, spread=0.6),
            record(bench, "mem", 80.0, idle=20.0, spread=0.1),
            record(bench, "llc", 85.0, idle=22.0, spread=0.1),
            record(bench, "mem+llc", 72.0, idle=12.0, spread=0.1),
            record(bench, "mem+llc(part)", 74.0, idle=13.0, spread=0.1),
            record(bench, "llc+mem(part)", 76.0, idle=14.0, spread=0.1),
        ]
    # blackscholes: tiny win, (part) variant best.
    out = [r for r in out if r.bench != "blackscholes" or r.policy == "buddy"]
    out += [
        record("blackscholes", p, rt)
        for p, rt in (("bpm", 103.0), ("mem", 100.0), ("llc", 100.5),
                      ("mem+llc", 99.5), ("mem+llc(part)", 97.0),
                      ("llc+mem(part)", 99.0))
    ]
    # freqmine: part beats full.
    out = [r for r in out if r.bench != "freqmine"]
    out += [
        record("freqmine", p, rt)
        for p, rt in (("buddy", 100.0), ("bpm", 150.0), ("mem", 99.0),
                      ("llc", 102.0), ("mem+llc", 100.0),
                      ("mem+llc(part)", 98.0), ("llc+mem(part)", 97.0))
    ]
    # second config with a smaller gain for the cross-config claim.
    out += [
        record("lbm", "buddy", 100.0, config="4_threads_4_nodes", threads=4),
        record("lbm", "mem+llc", 98.0, config="4_threads_4_nodes", threads=4),
    ]
    return out


class TestMainClaims:
    def test_paper_shaped_records_all_hold(self):
        claims = evaluate_main_claims(paper_shaped_records())
        assert len(claims) >= 10
        failing = [c.claim_id for c in claims if not c.holds]
        assert not failing, failing
        assert all_hold(claims)

    def test_anti_shaped_records_fail(self):
        """If coloring LOSES, the claims must report it."""
        records = [
            record("lbm", "buddy", 100.0, idle=10.0),
            record("lbm", "bpm", 90.0),
            record("lbm", "mem+llc", 130.0, idle=40.0),
            record("lbm", "mem", 120.0),
            record("lbm", "llc", 125.0),
            record("lbm", "mem+llc(part)", 122.0),
            record("lbm", "llc+mem(part)", 121.0),
        ]
        claims = evaluate_main_claims(records)
        assert not all_hold(claims)
        by_id = {c.claim_id: c for c in claims}
        assert not by_id["fig11/lbm-runtime-reduction"].holds
        assert not by_id["fig11/lbm-bpm-loses-to-tintmalloc"].holds

    def test_missing_benchmarks_are_skipped(self):
        claims = evaluate_main_claims([
            record("lbm", "buddy", 100.0),
            record("lbm", "mem+llc", 70.0),
        ])
        ids = {c.claim_id for c in claims}
        assert "fig11/lbm-runtime-reduction" in ids
        assert not any("blackscholes" in i for i in ids)


class TestFig10Claims:
    def test_reduction_claim(self):
        records = [
            record("synthetic", p, rt)
            for p, rt in (("buddy", 100.0), ("llc", 92.0), ("mem", 88.0),
                          ("mem+llc", 84.0))
        ]
        claims = evaluate_fig10_claims(records)
        assert all_hold(claims)
        red = next(c for c in claims if c.claim_id == "fig10/memllc-reduction")
        assert red.measured == pytest.approx(0.16)


class TestExperimentsMd:
    def test_file_structure(self, tmp_path):
        fig10_records = [
            record("synthetic", p, rt)
            for p, rt in (("buddy", 100.0), ("llc", 92.0), ("mem", 88.0),
                          ("mem+llc", 84.0))
        ]
        path = tmp_path / "EXPERIMENTS.md"
        write_experiments_md(
            str(path), fig10_records, paper_shaped_records(),
            profile="test", reps=1,
            configs=["16_threads_4_nodes", "4_threads_4_nodes"],
        )
        text = path.read_text()
        assert "# EXPERIMENTS" in text
        assert "claims hold" in text
        assert "Fig. 10" in text and "Fig. 14" in text
        assert "| fig11/lbm-runtime-reduction |" in text


class TestCsvRoundtrip:
    def test_read_back(self, tmp_path):
        records = [record("lbm", "buddy", 123.0)]
        path = tmp_path / "r.csv"
        write_csv(records, str(path))
        back = read_csv(str(path))
        assert len(back) == 1
        assert back[0].bench == "lbm"
        assert back[0].runtime == pytest.approx(123.0)
        assert back[0].faults == 5
