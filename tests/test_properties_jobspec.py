"""Hypothesis properties for JobSpec digest canonicalization.

The content digest is the cache key for every stored simulation result,
so its contract has to hold for *arbitrary* specs, not the handful the
sweep builds: identical identities always collide (dict key order,
JSON round-trips, unicode bench names must not matter), different
identities never collide, execution parameters never leak into it, and
a record-schema bump invalidates every digest (no false cache hits
across layouts).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import jobs as jobs_module
from repro.service.jobs import JobSpec

#: Full-range text including non-ASCII (but no surrogates, which JSON
#: cannot encode).
_names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)),
    min_size=1, max_size=16,
)


@st.composite
def specs(draw, **fixed):
    """A random valid JobSpec (identity fields only, unless overridden)."""
    kw = dict(
        kind=draw(st.sampled_from(["bench", "synthetic"])),
        bench=draw(_names),
        policy=draw(st.sampled_from(
            ["buddy", "bpm", "llc", "mem", "mem+llc", "mem+llc(part)"]
        )),
        config=draw(_names),
        rep=draw(st.integers(0, 5)),
        profile=draw(st.sampled_from(["mini", "scaled"])),
        seed=draw(st.integers(0, 2**31 - 1)),
        sanitize=draw(st.sampled_from(["off", "cheap", "full"])),
    )
    kw.update(fixed)
    return JobSpec(**kw)


_exec_params = st.fixed_dictionaries({
    "priority": st.integers(-100, 100),
    "timeout_s": st.one_of(
        st.none(),
        st.floats(min_value=1e-6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
    ),
    "max_retries": st.integers(0, 10),
    "force_run": st.booleans(),
    "trace_dir": st.one_of(st.none(), _names),
})


class TestDigestCanonicalization:
    @settings(max_examples=80, deadline=None)
    @given(specs(), _exec_params)
    def test_execution_fields_never_change_the_digest(self, spec, execp):
        # Same evaluation at a different priority/timeout/retry budget
        # must hit the same cache line.
        variant = JobSpec.from_json({**spec.to_json(), **execp})
        assert variant.digest() == spec.digest()

    @settings(max_examples=80, deadline=None)
    @given(specs())
    def test_json_roundtrip_and_key_order_invariance(self, spec):
        doc = spec.to_json()
        # Reverse the dict insertion order and push it through a real
        # JSON wire round trip: the digest must not notice either.
        reordered = json.loads(
            json.dumps({k: doc[k] for k in reversed(list(doc))})
        )
        clone = JobSpec.from_json(reordered)
        assert clone == spec
        assert clone.digest() == spec.digest()

    @settings(max_examples=80, deadline=None)
    @given(specs(), specs())
    def test_digests_collide_iff_identities_match(self, a, b):
        assert (a.digest() == b.digest()) == (a.identity() == b.identity())

    @settings(max_examples=40, deadline=None)
    @given(_names, _names)
    def test_unicode_bench_names_roundtrip(self, bench_a, bench_b):
        a = JobSpec(bench=bench_a, profile="mini")
        b = JobSpec(bench=bench_b, profile="mini")
        # The wire form survives ensure_ascii encoding untouched.
        wired = JobSpec.from_json(json.loads(json.dumps(a.to_json())))
        assert wired.bench == bench_a
        assert wired.digest() == a.digest()
        assert (a.digest() == b.digest()) == (bench_a == bench_b)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=1e-9, max_value=1e9,
                     allow_nan=False, allow_infinity=False))
    def test_float_execution_fields_roundtrip_exactly(self, timeout):
        # Floats survive the JSON wire bit-exactly (repr round-trip),
        # so a resubmitted spec is equal, not merely close.
        spec = JobSpec(profile="mini", timeout_s=timeout)
        wired = JobSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert wired.timeout_s == timeout
        assert wired == spec

    def test_schema_version_bump_invalidates_every_digest(self, monkeypatch):
        # A new record layout must never false-hit entries digested
        # under the old one.
        spec = JobSpec(profile="mini")
        before = spec.digest()
        monkeypatch.setattr(
            jobs_module, "SCHEMA_VERSION", jobs_module.SCHEMA_VERSION + 1
        )
        after = spec.digest()
        assert before != after
        assert spec.identity()["schema_version"] \
            == jobs_module.SCHEMA_VERSION

    def test_digest_is_pure_ascii_sha256(self):
        digest = JobSpec(bench="うどん", profile="mini").digest()
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
