"""Unit tests for the observer: spans, counters, sampling, ring buffer."""

import pytest

from repro.obs import NULL_OBSERVER, NullObserver, Observer, RingBuffer
from repro.obs.events import InstantEvent, SpanEvent


class TestNullObserver:
    def test_disabled_and_inert(self):
        obs = NullObserver()
        assert not obs.enabled
        # Every instrumentation point must be callable and a no-op.
        obs.register_counter("x", lambda now: 1)
        obs.span("a", 0.0, 1.0)
        obs.span_begin("b", 0.0)
        obs.span_end(1.0)
        obs.instant("c", 0.5)
        obs.maybe_sample(10.0)
        obs.sample(10.0)
        obs.finish(10.0)

    def test_shared_singleton_disabled(self):
        assert NULL_OBSERVER.enabled is False


class TestSpans:
    def test_complete_span(self):
        obs = Observer()
        obs.span("dram.access", 10.0, 25.0, track="dram", tid=2,
                 args={"bank": 7})
        (e,) = obs.events
        assert isinstance(e, SpanEvent)
        assert e.duration == 15.0
        assert (e.track, e.tid) == ("dram", 2)
        assert e.args == {"bank": 7}

    def test_nesting_is_lifo_per_lane(self):
        obs = Observer()
        obs.span_begin("outer", 0.0)
        obs.span_begin("inner", 1.0)
        assert obs.open_spans() == ["outer", "inner"]
        obs.span_end(2.0)
        obs.span_end(5.0)
        inner, outer = obs.events
        assert (inner.name, inner.begin, inner.end) == ("inner", 1.0, 2.0)
        assert (outer.name, outer.begin, outer.end) == ("outer", 0.0, 5.0)
        assert obs.open_spans() == []

    def test_nesting_lanes_are_independent(self):
        obs = Observer()
        obs.span_begin("a", 0.0, track="threads", tid=0)
        obs.span_begin("b", 1.0, track="threads", tid=1)
        obs.span_end(2.0, track="threads", tid=0)
        (e,) = obs.events
        assert e.name == "a"
        assert obs.open_spans(track="threads", tid=1) == ["b"]

    def test_end_without_begin_raises(self):
        obs = Observer()
        with pytest.raises(ValueError):
            obs.span_end(1.0)

    def test_end_merges_args(self):
        obs = Observer()
        obs.span_begin("s", 0.0, args={"kind": "parallel"})
        obs.span_end(4.0, args={"idle": 1.5})
        (e,) = obs.events
        assert e.args == {"kind": "parallel", "idle": 1.5}

    def test_instant(self):
        obs = Observer()
        obs.instant("alloc", 3.0, track="kernel", tid=9)
        (e,) = obs.events
        assert isinstance(e, InstantEvent)
        assert (e.name, e.ts, e.tid) == ("alloc", 3.0, 9)

    def test_event_cap_drops_and_counts(self):
        obs = Observer(max_events=2)
        for i in range(5):
            obs.instant("e", float(i))
        assert len(obs.events) == 2
        assert obs.dropped_events == 3


class TestCounters:
    def test_registration_order_preserved(self):
        obs = Observer()
        obs.register_counter("b", lambda now: 1)
        obs.register_counter("a", lambda now: 2)
        assert obs.counter_names == ["b", "a"]

    def test_duplicate_name_replaces_in_place(self):
        """Re-registration swaps the callback, keeps the column order,
        and records a debug instant (regression: used to raise, which
        broke rebuilding a component against a long-lived observer)."""
        obs = Observer()
        obs.register_counter("x", lambda now: 1)
        obs.register_counter("y", lambda now: 10)
        obs.register_counter("x", lambda now: 2)
        assert obs.counter_names == ["x", "y"]  # order preserved
        obs.sample(0.0)
        assert obs.samples.last()[1] == [2, 10]  # new closure sampled
        instants = [e for e in obs.events
                    if getattr(e, "name", "") == "obs.counter.reregistered"]
        assert len(instants) == 1
        assert instants[0].args == {"name": "x"}

    def test_reregistration_across_component_rebuilds(self):
        """Two schedulers sharing one observer must both register their
        counters; the second rebuild samples the live component."""
        from repro.service.scheduler import Scheduler

        obs = Observer()
        with Scheduler(shards=1, executor="inline",
                       runner=lambda spec: {"ok": 1}, observer=obs):
            pass
        # Second machine against the same observer: replaces, not raises.
        with Scheduler(shards=1, executor="inline",
                       runner=lambda spec: {"ok": 1}, observer=obs) as sched2:
            from repro.service.jobs import JobSpec

            sched2.submit(JobSpec(bench="lbm", policy="buddy",
                                  config="c")).wait(10)
            obs.sample(1.0)
        row = dict(zip(obs.counter_names, obs.samples.last()[1]))
        assert row["service.submitted"] == 1.0  # live scheduler, not stale

    def test_sampling_cadence(self):
        """maybe_sample only fires once per interval of sim time."""
        obs = Observer(sample_interval_ns=100.0)
        ticks = {"n": 0}

        def counter(now):
            ticks["n"] += 1
            return ticks["n"]

        obs.register_counter("ticks", counter)
        for t in range(0, 1000, 10):  # 100 calls, 10 ns apart
            obs.maybe_sample(float(t))
        times = [ts for ts, _ in obs.samples]
        assert len(times) == 10  # one per 100 ns, not one per call
        spacing = [b - a for a, b in zip(times, times[1:])]
        assert all(s >= 100.0 for s in spacing)

    def test_counters_receive_now(self):
        obs = Observer(sample_interval_ns=0.0)
        obs.register_counter("t", lambda now: now * 2)
        obs.sample(21.0)
        ts, row = obs.samples.last()
        assert (ts, row) == (21.0, [42.0])

    def test_finish_forces_final_sample_once(self):
        obs = Observer(sample_interval_ns=1e9)
        obs.register_counter("c", lambda now: 7)
        obs.maybe_sample(0.0)
        obs.finish(500.0)
        assert [ts for ts, _ in obs.samples] == [0.0, 500.0]
        obs.finish(500.0)  # idempotent at the same timestamp
        assert len(obs.samples) == 2


class TestRingBuffer:
    def test_eviction_keeps_most_recent(self):
        ring = RingBuffer(4)
        for i in range(6):
            ring.append(i)
        assert len(ring) == 4
        assert list(ring) == [2, 3, 4, 5]
        assert ring.evicted == 2
        assert ring.last() == 5

    def test_under_capacity(self):
        ring = RingBuffer(8)
        ring.append("a")
        ring.append("b")
        assert list(ring) == ["a", "b"]
        assert ring.evicted == 0

    def test_empty(self):
        ring = RingBuffer(2)
        assert len(ring) == 0
        assert list(ring) == []
        with pytest.raises(IndexError):
            ring.last()

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_sample_eviction_through_observer(self):
        obs = Observer(sample_interval_ns=0.0, ring_capacity=3)
        obs.register_counter("c", lambda now: now)
        for t in range(5):
            obs.sample(float(t))
        times = [ts for ts, _ in obs.samples]
        assert times == [2.0, 3.0, 4.0]
        assert obs.samples.evicted == 2
