"""Unit + property tests for the binary buddy allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.buddy import MAX_ORDER, BuddyAllocator


class TestBasics:
    def test_initial_free_frames(self):
        b = BuddyAllocator(base=0, num_frames=4096)
        assert b.free_frames() == 4096

    def test_alloc_free_roundtrip(self):
        b = BuddyAllocator(0, 4096)
        pfn = b.alloc(0)
        assert pfn is not None
        assert b.free_frames() == 4095
        b.free(pfn, 0)
        assert b.free_frames() == 4096

    def test_alignment(self):
        b = BuddyAllocator(0, 4096)
        for order in range(MAX_ORDER + 1):
            pfn = b.alloc(order)
            assert pfn % (1 << order) == 0
            b.free(pfn, order)

    def test_split_produces_buddies(self):
        b = BuddyAllocator(0, 1 << MAX_ORDER)
        b.alloc(0)
        # One page taken from one max block: every lower order has a buddy.
        for order in range(MAX_ORDER):
            assert b.free_blocks(order) == 1

    def test_coalescing_restores_max_order(self):
        b = BuddyAllocator(0, 1 << MAX_ORDER)
        pfns = [b.alloc(0) for _ in range(8)]
        for pfn in pfns:
            b.free(pfn, 0)
        assert b.largest_free_order() == MAX_ORDER
        assert b.free_blocks(MAX_ORDER) == 1

    def test_exhaustion_returns_none(self):
        b = BuddyAllocator(0, 4)
        assert b.alloc(2) is not None
        assert b.alloc(0) is None

    def test_nonzero_base(self):
        b = BuddyAllocator(base=1 << 20, num_frames=2048)
        pfn = b.alloc(3)
        assert pfn >= 1 << 20
        b.free(pfn, 3)
        b.check_invariants()

    def test_odd_sized_range_tiled(self):
        b = BuddyAllocator(0, 1000)  # not a power of two
        assert b.free_frames() == 1000
        b.check_invariants()


class TestErrors:
    def test_double_free_detected(self):
        b = BuddyAllocator(0, 64)
        pfn = b.alloc(0)
        b.free(pfn, 0)
        with pytest.raises(ValueError, match="double free"):
            b.free(pfn, 0)

    def test_free_inside_free_block(self):
        b = BuddyAllocator(0, 64)
        with pytest.raises(ValueError, match="double free"):
            b.free(8, 0)  # never allocated

    def test_misaligned_free(self):
        b = BuddyAllocator(0, 64)
        with pytest.raises(ValueError, match="aligned"):
            b.free(1, 1)

    def test_out_of_range_free(self):
        b = BuddyAllocator(0, 64)
        with pytest.raises(ValueError, match="outside"):
            b.free(64, 0)

    def test_bad_order(self):
        b = BuddyAllocator(0, 64)
        with pytest.raises(ValueError):
            b.alloc(MAX_ORDER + 1)


class TestPopHead:
    def test_fifo_order(self):
        b = BuddyAllocator(0, 4 << MAX_ORDER)
        first = b.pop_head(MAX_ORDER)
        second = b.pop_head(MAX_ORDER)
        assert first == 0
        assert second == 1 << MAX_ORDER

    def test_empty_order(self):
        b = BuddyAllocator(0, 1 << MAX_ORDER)
        assert b.pop_head(0) is None


class TestFragment:
    def test_fragment_to_singles(self):
        b = BuddyAllocator(0, 256)
        b.fragment()
        assert b.free_blocks(0) == 256
        assert b.free_frames() == 256
        b.check_invariants()

    def test_fragment_with_order(self):
        b = BuddyAllocator(0, 16)
        b.fragment(order=list(reversed(range(16))))
        assert b.pop_head(0) == 15

    def test_fragment_order_must_permute(self):
        b = BuddyAllocator(0, 16)
        with pytest.raises(ValueError):
            b.fragment(order=[0, 0, 1])

    def test_alloc_after_fragment(self):
        b = BuddyAllocator(0, 64)
        b.fragment()
        seen = {b.alloc(0) for _ in range(64)}
        assert len(seen) == 64
        assert b.alloc(0) is None


@st.composite
def alloc_free_script(draw):
    """A random interleaving of allocs (by order) and frees (by index)."""
    return draw(
        st.lists(
            st.tuples(st.sampled_from(["alloc", "free"]), st.integers(0, 6)),
            min_size=1,
            max_size=120,
        )
    )


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(alloc_free_script())
    def test_no_overlap_and_conservation(self, script):
        b = BuddyAllocator(0, 1024)
        live: dict[int, int] = {}  # pfn -> order
        for op, arg in script:
            if op == "alloc":
                order = arg % (MAX_ORDER + 1)
                pfn = b.alloc(order)
                if pfn is not None:
                    # No overlap with any live allocation.
                    new = set(range(pfn, pfn + (1 << order)))
                    for lp, lo in live.items():
                        assert not new & set(range(lp, lp + (1 << lo)))
                    live[pfn] = order
            elif live:
                pfn = sorted(live)[arg % len(live)]
                b.free(pfn, live.pop(pfn))
            # Conservation: free + live == total.
            held = sum(1 << o for o in live.values())
            assert b.free_frames() + held == 1024
        b.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, MAX_ORDER), min_size=1, max_size=40))
    def test_free_all_restores_full_coalescing(self, orders):
        b = BuddyAllocator(0, 1 << MAX_ORDER)
        allocated = []
        for order in orders:
            pfn = b.alloc(order)
            if pfn is not None:
                allocated.append((pfn, order))
        for pfn, order in allocated:
            b.free(pfn, order)
        assert b.free_frames() == 1 << MAX_ORDER
        assert b.free_blocks(MAX_ORDER) == 1
        b.check_invariants()
