"""Acceptance tests for the service telemetry plane.

The headline scenario mirrors the PR's acceptance criterion: a
chaos-free drain of >= 50 jobs through a 4-shard scheduler yields one
stitched Perfetto trace with correct cross-process parenting per job,
and throughput/latency/cache numbers computed from the histogram
registry (not from ad-hoc timers).
"""

import json

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.dashboard import counter_total, merge_named_histograms, render_frame
from repro.obs.metrics import MetricsRegistry, find_metric, quantile_from_snapshot
from repro.obs.stitch import TraceCollector, span_index, stitch_perfetto, trace_roots
from repro.obs.tracectx import TraceContext
from repro.service.client import ServiceClient
from repro.service.jobs import JobSpec
from repro.service.scheduler import Scheduler


def _trivial_runner(spec: JobSpec) -> dict:
    """Module-level (fork/pickle-safe) runner: no simulation, just echo."""
    return {"label": spec.label, "rep": spec.rep}


def _failing_runner(spec: JobSpec) -> dict:
    raise RuntimeError("boom")


def _specs(n: int) -> list[JobSpec]:
    return [
        JobSpec(bench=f"b{i % 13}", policy="buddy", config="cfg",
                rep=i // 13, profile="mini")
        for i in range(n)
    ]


class TestStitchedDrain:
    """The acceptance drain: 56 jobs, 4 shards, process executor."""

    @pytest.fixture(scope="class")
    def drained(self):
        registry = MetricsRegistry()
        collector = TraceCollector()
        specs = _specs(56)
        with ServiceClient(store=":memory:", shards=4, executor="process",
                           runner=_trivial_runner, metrics=registry,
                           traces=collector) as client:
            handles = client.submit_many(specs)
            for h in handles:
                h.result(timeout=120)
            assert client.drain(timeout=60)
        return registry.snapshot(), collector.spans()

    def test_every_job_stitches_one_tree(self, drained):
        _, spans = drained
        roots = trace_roots(spans)
        assert len(roots) == 56
        assert all(len(r) == 1 for r in roots.values())
        assert all(r[0]["name"].startswith("client.submit")
                   for r in roots.values())

    def test_cross_process_parenting_chain(self, drained):
        _, spans = drained
        index = span_index(spans)
        want = {"sched.job": "client.submit",
                "sched.attempt": "sched.job",
                "worker.attempt": "sched.attempt"}
        seen = {k: 0 for k in want}
        for span in spans:
            kind = span["name"].split(":")[0]
            if kind not in want:
                continue
            parent = index[span["parent_span_id"]]
            assert parent["name"].split(":")[0] == want[kind], span["name"]
            assert parent["trace_id"] == span["trace_id"]
            seen[kind] += 1
        assert all(count == 56 for count in seen.values()), seen

    def test_worker_spans_crossed_the_fork(self, drained):
        _, spans = drained
        parent_pids = {s["pid"] for s in spans
                       if s["name"].startswith("sched.")}
        worker_pids = {s["pid"] for s in spans
                       if s["name"].startswith("worker.attempt")}
        assert parent_pids.isdisjoint(worker_pids)  # genuinely other processes

    def test_perfetto_output_is_valid(self, drained):
        _, spans = drained
        doc = stitch_perfetto(spans)
        json.dumps(doc)  # serializable
        meta_pids = [e["pid"] for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(meta_pids) == len(set(meta_pids))
        per_track: dict[int, list[float]] = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                per_track.setdefault(e["pid"], []).append(e["ts"])
        for ts in per_track.values():
            assert ts == sorted(ts)

    def test_metrics_computed_from_histogram_registry(self, drained):
        snapshot, _ = drained
        assert find_metric(snapshot, "counters", "sched.jobs",
                           outcome="completed")["value"] == 56
        attempt = merge_named_histograms(snapshot, "sched.attempt_s")
        assert attempt["count"] == 56
        p50 = quantile_from_snapshot(attempt, 0.50)
        p99 = quantile_from_snapshot(attempt, 0.99)
        assert 0 < p50 <= p99
        wait = merge_named_histograms(snapshot, "sched.queue_wait_s")
        assert wait["count"] == 56
        # per-shard labels stayed bounded: one wait histogram per shard
        shards = {h["labels"].get("shard")
                  for h in snapshot["histograms"]
                  if h["name"] == "sched.queue_wait_s"}
        assert shards <= {"0", "1", "2", "3"} and len(shards) >= 2

    def test_dashboard_renders_the_drain(self, drained):
        snapshot, _ = drained
        frame = render_frame(snapshot, stats={"shards": 4,
                                              "executor": "process"})
        assert "completed=56" in frame
        assert "attempt" in frame and "p99=" in frame


class TestCacheAndDedupOutcomes:
    def test_cache_hits_counted_and_spanned(self):
        registry = MetricsRegistry()
        collector = TraceCollector()
        spec = JobSpec(bench="b", policy="buddy", config="cfg")
        with ServiceClient(store=":memory:", shards=1, executor="inline",
                           runner=_trivial_runner, metrics=registry,
                           traces=collector) as client:
            client.submit(spec).result(timeout=30)
            handle = client.submit(spec)
            assert handle.from_cache
            handle.result(timeout=30)
        snap = registry.snapshot()
        assert find_metric(snap, "counters", "sched.jobs",
                           outcome="cache_hit")["value"] == 1
        assert find_metric(snap, "counters", "sched.jobs",
                           outcome="completed")["value"] == 1
        hits = [s for s in collector.spans()
                if s["name"].startswith("sched.job")
                and (s.get("args") or {}).get("from_cache")]
        assert len(hits) == 1

    def test_store_latency_recorded_via_ambient(self):
        spec = JobSpec(bench="b", policy="buddy", config="cfg")
        with obs_metrics.installed(MetricsRegistry()) as registry:
            with ServiceClient(store=":memory:", shards=1, executor="inline",
                               runner=_trivial_runner) as client:
                client.submit(spec).result(timeout=30)
                client.submit(spec).result(timeout=30)
        snap = registry.snapshot()
        assert find_metric(snap, "histograms", "store.get_s",
                           result="hit")["count"] == 1
        assert find_metric(snap, "histograms", "store.get_s",
                           result="miss")["count"] == 1
        assert find_metric(snap, "histograms", "store.put_s")["count"] == 1


class TestFailurePathMetrics:
    def test_retries_and_failed_outcome(self):
        registry = MetricsRegistry()
        with Scheduler(shards=1, executor="inline", runner=_failing_runner,
                       metrics=registry, breaker_threshold=None) as sched:
            spec = JobSpec(bench="b", policy="buddy", config="cfg",
                           max_retries=2)
            handle = sched.submit(spec)
            handle.wait(30)
        snap = registry.snapshot()
        assert find_metric(snap, "counters", "sched.retries",
                           reason="err")["value"] == 2
        assert find_metric(snap, "counters", "sched.jobs",
                           outcome="failed")["value"] == 1
        assert find_metric(snap, "histograms", "sched.backoff_s")["count"] == 2
        attempts = merge_named_histograms(snap, "sched.attempt_s")
        assert attempts["count"] == 3

    def test_breaker_state_gauge_tracks_open(self):
        registry = MetricsRegistry()
        with Scheduler(shards=1, executor="inline", runner=_failing_runner,
                       metrics=registry, breaker_threshold=2,
                       breaker_cooldown_s=60.0) as sched:
            for i in range(2):
                sched.submit(JobSpec(bench=f"b{i}", policy="buddy",
                                     config="cfg", max_retries=0)).wait(30)
        snap = registry.snapshot()
        assert find_metric(snap, "gauges", "sched.breaker_state",
                           shard=0)["value"] == 2.0  # open
        assert find_metric(snap, "counters", "sched.breaker_transitions",
                           to="open", shard=0)["value"] == 1

    def test_inline_worker_span_still_parented(self):
        collector = TraceCollector()
        with Scheduler(shards=1, executor="inline", runner=_trivial_runner,
                       traces=collector) as sched:
            sched.submit(JobSpec(bench="b", policy="buddy",
                                 config="cfg")).result(timeout=30)
        spans = collector.spans()
        index = span_index(spans)
        worker = next(s for s in spans
                      if s["name"].startswith("worker.attempt"))
        assert index[worker["parent_span_id"]]["name"].startswith(
            "sched.attempt")


class TestTelemetryOff:
    def test_no_metrics_no_traces_no_aux(self):
        """metrics=None + traces=None keeps the legacy message shapes and
        records nothing anywhere (the zero-overhead discipline)."""
        assert obs_metrics.active() is None
        with ServiceClient(store=":memory:", shards=2, executor="process",
                           runner=_trivial_runner) as client:
            handles = client.submit_many(_specs(4))
            for h in handles:
                h.result(timeout=60)
            assert client.scheduler.metrics is None
            assert client.scheduler.traces is None

    def test_submit_trace_kwarg_ignored_when_off(self):
        with Scheduler(shards=1, executor="inline",
                       runner=_trivial_runner) as sched:
            handle = sched.submit(
                JobSpec(bench="b", policy="buddy", config="cfg"),
                trace=TraceContext.root(),
            )
            assert handle.result(timeout=30)["label"]


class TestDashboardHelpers:
    def test_counter_total_sums_label_variants(self):
        reg = MetricsRegistry()
        reg.counter("sched.jobs", outcome="completed").inc(3)
        reg.counter("sched.jobs", outcome="cache_hit").inc(2)
        snap = reg.snapshot()
        assert counter_total(snap, "sched.jobs") == 5
        assert counter_total(snap, "sched.jobs", outcome="cache_hit") == 2

    def test_render_frame_empty_snapshot(self):
        frame = render_frame({"counters": [], "gauges": [], "histograms": []})
        assert "no samples" in frame

    def test_render_frame_rates_with_window(self):
        reg = MetricsRegistry()
        reg.counter("sched.jobs", outcome="completed").inc(5)
        old = reg.snapshot()
        reg.counter("sched.jobs", outcome="completed").inc(10)
        frame = render_frame(reg.snapshot(), previous=old, window_s=2.0)
        assert "5.0 jobs/s" in frame
