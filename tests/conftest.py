"""Shared fixtures: small machines and kernels for fast tests.

Also enforces a per-test hang deadline: with ``pytest-timeout``
installed the ``timeout`` ini option does it; without it (hermetic
containers) a ``faulthandler`` fallback aborts the process with full
tracebacks after the same deadline — a regression that hangs costs CI
minutes, not forever.
"""

from __future__ import annotations

import importlib.util

import pytest

from repro.core.tintmalloc import TintMalloc
from repro.kernel.kernel import Kernel
from repro.machine.presets import opteron_6128, tiny_machine
from repro.util.units import MIB

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None
#: Fallback per-test deadline; keep in sync with `timeout` in pyproject.
_FALLBACK_TIMEOUT_S = 300.0

if not _HAVE_PYTEST_TIMEOUT:
    import faulthandler

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_protocol(item):
        """Arm a watchdog per test: dump all stacks and exit on a hang."""
        if faulthandler.cancel_dump_traceback_later:  # platform support
            faulthandler.dump_traceback_later(_FALLBACK_TIMEOUT_S, exit=True)
            try:
                yield
            finally:
                faulthandler.cancel_dump_traceback_later()
        else:  # pragma: no cover - faulthandler always has it on CPython
            yield


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/ fixtures from current behaviour "
             "(then eyeball the diff before committing)",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run should refresh golden fixtures instead of assert."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def tiny():
    """A 2-node / 4-core machine with 64 MiB of memory."""
    return tiny_machine()


@pytest.fixture
def tiny_small():
    """The tiny machine with only 4 MiB — for exhaustion tests."""
    return tiny_machine(memory_bytes=4 * MIB)


@pytest.fixture
def opteron():
    """The paper's platform with reduced (128 MiB) memory for speed."""
    return opteron_6128(memory_bytes=128 * MIB)


@pytest.fixture
def kernel(tiny):
    return Kernel(tiny)


@pytest.fixture
def tm(kernel):
    return TintMalloc(kernel=kernel)
