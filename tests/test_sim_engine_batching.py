"""The engine's batching window must not distort results materially.

BATCH_SLACK_NS lets a thread run ~one DRAM-access-time past the
next-soonest thread before rescheduling.  Setting it to zero recovers
strict smallest-clock interleaving; results must agree closely (the
window is far below the timescale of the contention effects measured).
"""

import numpy as np
import pytest

from repro.alloc.policies import Policy
from repro.core.session import ColoredTeam
from repro.core.tintmalloc import TintMalloc
from repro.kernel.kernel import Kernel
from repro.machine.presets import tiny_machine
from repro.sim.barrier import Program, Section
from repro.sim.engine import Engine, MemorySystem
from repro.sim.trace import Trace


def run_with_slack(slack: float, policy: Policy) -> float:
    machine = tiny_machine()
    kernel = Kernel(machine)
    tm = TintMalloc(kernel=kernel)
    team = ColoredTeam.create(tm, [0, 1, 2, 3], policy)
    memory = MemorySystem.for_machine(machine)
    engine = Engine(team, memory)
    engine.BATCH_SLACK_NS = slack  # instance override

    line = machine.mapping.line_bytes
    traces = {}
    for i, handle in enumerate(team.handles):
        base = handle.malloc(128 * 1024)
        n = 128 * 1024 // line
        traces[i] = Trace(
            vaddrs=base + np.arange(n, dtype=np.int64) * line,
            writes=np.ones(n, dtype=bool),
            think_ns=2.0,
        )
    program = Program([Section("parallel", traces)], nthreads=4)
    return engine.run(program).parallel_runtime


@pytest.mark.parametrize("policy", [Policy.BUDDY, Policy.MEM_LLC])
def test_batching_window_changes_little(policy):
    strict = run_with_slack(0.0, policy)
    batched = run_with_slack(60.0, policy)
    # Interleaving differences shift row-buffer luck somewhat on this tiny
    # trace; the tolerance is far below the 30-70 % effects the harness
    # measures, which is the property that matters.
    assert batched == pytest.approx(strict, rel=0.20)


def test_instance_override_does_not_leak():
    run_with_slack(0.0, Policy.BUDDY)
    assert Engine.BATCH_SLACK_NS == 60.0
