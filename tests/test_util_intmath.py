"""Unit tests for integer bit math."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intmath import (
    bit_slice,
    deposit_bits,
    is_power_of_two,
    log2_exact,
    mask,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small(self):
        assert mask(4) == 0b1111

    def test_wide(self):
        assert mask(64) == (1 << 64) - 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitSlice:
    def test_low_bits(self):
        assert bit_slice(0b1011, 0, 1) == 0b11

    def test_middle(self):
        assert bit_slice(0b101100, 2, 4) == 0b011

    def test_single_bit(self):
        assert bit_slice(0b100, 2, 2) == 1

    def test_beyond_value_is_zero(self):
        assert bit_slice(0b1, 10, 12) == 0

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            bit_slice(5, 3, 1)

    @given(st.integers(0, 2**40), st.integers(0, 30), st.integers(0, 10))
    def test_matches_shift_mask(self, value, lo, width):
        hi = lo + width
        assert bit_slice(value, lo, hi) == (value >> lo) & mask(width + 1)


class TestDepositBits:
    def test_roundtrip_with_slice(self):
        v = deposit_bits(0, 0b101, 4, 6)
        assert bit_slice(v, 4, 6) == 0b101

    def test_preserves_other_bits(self):
        v = deposit_bits(0xFF, 0, 2, 3)
        assert v == 0xFF & ~0b1100

    def test_field_too_large(self):
        with pytest.raises(ValueError):
            deposit_bits(0, 4, 0, 1)

    @given(
        st.integers(0, 2**40),
        st.integers(0, 2**5 - 1),
        st.integers(0, 30),
    )
    def test_slice_of_deposit(self, base, field, lo):
        hi = lo + 4
        v = deposit_bits(base, field, lo, hi)
        assert bit_slice(v, lo, hi) == field


class TestPowersOfTwo:
    @pytest.mark.parametrize("v", [1, 2, 4, 1024, 2**40])
    def test_powers(self, v):
        assert is_power_of_two(v)
        assert log2_exact(v) == v.bit_length() - 1

    @pytest.mark.parametrize("v", [0, -2, 3, 6, 1023])
    def test_non_powers(self, v):
        assert not is_power_of_two(v)
        with pytest.raises(ValueError):
            log2_exact(v)
