"""JobSpec identity: digest stability, round trips, sanitize survival."""

from __future__ import annotations

import json

import pytest

from repro.alloc.policies import Policy
from repro.experiments.runner import SweepJob
from repro.service import JobSpec


class TestDigest:
    def test_digest_is_stable_and_deterministic(self):
        a = JobSpec(bench="lbm", policy="mem+llc", seed=3)
        b = JobSpec(bench="lbm", policy="mem+llc", seed=3)
        assert a.digest() == b.digest()
        assert len(a.digest()) == 64  # sha256 hex

    @pytest.mark.parametrize("change", [
        {"bench": "freqmine"},
        {"policy": "buddy"},
        {"config": "4_threads_4_nodes"},
        {"rep": 1},
        {"profile": "mini"},
        {"seed": 4},
        {"sanitize": "full"},
        {"kind": "synthetic"},
    ])
    def test_identity_fields_change_digest(self, change):
        base = JobSpec(bench="lbm", policy="mem+llc", seed=3,
                       config="16_threads_4_nodes", profile="scaled")
        changed = JobSpec.from_json({**base.to_json(), **change})
        assert changed.digest() != base.digest()

    @pytest.mark.parametrize("change", [
        {"priority": 9},
        {"timeout_s": 1.5},
        {"max_retries": 7},
        {"trace_dir": "/tmp/traces"},
        {"force_run": True},
    ])
    def test_execution_fields_do_not_change_digest(self, change):
        base = JobSpec(bench="lbm", policy="mem+llc", seed=3)
        changed = JobSpec.from_json({**base.to_json(), **change})
        assert changed.digest() == base.digest()

    def test_digest_covers_machine_fingerprint(self):
        """Profiles resolving to different machines digest differently
        even with every explicit field equal."""
        scaled = JobSpec(profile="scaled")
        mini = JobSpec(profile="mini")
        assert scaled.identity()["machine"] != mini.identity()["machine"]
        assert scaled.digest() != mini.digest()


class TestRoundTrip:
    def test_json_round_trip_through_wire_format(self):
        spec = JobSpec(bench="streamcluster", policy="llc+mem(part)",
                       config="8_threads_2_nodes", rep=2, profile="mini",
                       seed=11, sanitize="full", trace_dir="/tmp/t",
                       force_run=True, priority=3, timeout_s=2.5,
                       max_retries=5)
        wire = json.dumps(spec.to_json())
        back = JobSpec.from_json(json.loads(wire))
        assert back == spec
        assert back.digest() == spec.digest()

    def test_sanitize_level_survives_round_trip(self):
        """Satellite: --sanitize must survive the job-spec round trip so
        service workers arm the sanitizer like direct calls do."""
        for level in ("off", "cheap", "full"):
            spec = JobSpec(sanitize=level)
            assert JobSpec.from_json(spec.to_json()).sanitize == level

    def test_from_json_ignores_unknown_keys(self):
        data = JobSpec().to_json()
        data["added_in_a_future_version"] = 42
        assert JobSpec.from_json(data) == JobSpec()

    def test_from_sweep_job(self):
        job = SweepJob(bench="lbm", policy=Policy.MEM_LLC,
                       config="4_threads_4_nodes", rep=1, profile="mini",
                       seed=9, sanitize="cheap")
        spec = JobSpec.from_sweep_job(job)
        assert spec.bench == "lbm"
        assert spec.policy == "mem+llc"
        assert Policy(spec.policy) is Policy.MEM_LLC
        assert (spec.config, spec.rep, spec.profile, spec.seed) == \
            ("4_threads_4_nodes", 1, "mini", 9)
        assert spec.sanitize == "cheap"
        assert not spec.force_run

    def test_traced_sweep_job_forces_run(self):
        job = SweepJob(bench="lbm", policy=Policy.BUDDY,
                       config="4_threads_4_nodes", rep=0,
                       trace_dir="/tmp/traces")
        spec = JobSpec.from_sweep_job(job)
        assert spec.force_run
        assert spec.trace_dir == "/tmp/traces"


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(kind="nonsense")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(profile="warp-speed")

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(max_retries=-1)


class TestStructuredPolicy:
    """Satellite contract: JobSpec.policy accepts a structured policy
    dict (the search genome's phenotype) with lossless round-trip and
    digest-stable canonicalization; plain named strings keep working."""

    def _phenotype(self, **over) -> dict:
        doc = {
            "type": "custom",
            "name": "tuned:abc",
            "mem": [[3, 1], []],
            "llc": [[2], [0, 5]],
            "aged": False,
            "hugepages": True,
        }
        doc.update(over)
        return doc

    def test_dict_policy_accepted_and_canonicalized(self):
        spec = JobSpec(policy=self._phenotype())
        assert isinstance(spec.policy, dict)
        assert spec.policy["mem"][0] == [1, 3]  # sorted at construction
        assert spec.policy_label == "tuned:abc"
        assert "tuned:abc" in spec.label

    def test_equivalent_dicts_digest_identically(self):
        a = JobSpec(policy=self._phenotype(mem=[[3, 1], []]))
        b = JobSpec(policy=self._phenotype(mem=[[1, 3, 1], []]))
        assert a.digest() == b.digest()

    def test_dict_policy_changes_digest_vs_string(self):
        assert JobSpec(policy=self._phenotype()).digest() \
            != JobSpec(policy="mem+llc").digest()
        assert JobSpec(policy=self._phenotype()).digest() \
            != JobSpec(policy=self._phenotype(aged=True)).digest()

    def test_wire_round_trip_is_lossless(self):
        spec = JobSpec(policy=self._phenotype())
        wire = json.loads(json.dumps(spec.to_json()))
        back = JobSpec.from_json(wire)
        assert back.policy == spec.policy
        assert back.digest() == spec.digest()

    def test_named_policy_strings_still_work(self):
        spec = JobSpec(policy="mem+llc")
        assert spec.policy == "mem+llc"
        assert spec.policy_label == "mem+llc"
        back = JobSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert back.digest() == spec.digest()

    def test_malformed_policy_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(policy={"type": "custom", "name": "x"})  # missing genes
        with pytest.raises(ValueError):
            JobSpec(policy=42)
