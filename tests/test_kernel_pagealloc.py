"""Unit tests for Algorithm 1 (colored page selection) and the buddy path."""

import pytest

from repro.kernel.frame import FramePool, FrameState
from repro.kernel.pagealloc import PageAllocator
from repro.kernel.task import TaskStruct
from repro.machine.presets import tiny_machine
from repro.util.units import MIB


@pytest.fixture
def alloc(tiny):
    return PageAllocator(FramePool(tiny.mapping), tiny.topology)


def colored_task(tiny, core=0, mem=None, llc=None, tid=1):
    task = TaskStruct(tid=tid, core=core)
    for c in mem or ():
        task.add_mem_color(c)
    for c in llc or ():
        task.add_llc_color(c)
    return task


class TestUncoloredPath:
    def test_local_node_preferred(self, tiny, alloc):
        for core in range(tiny.topology.num_cores):
            task = TaskStruct(tid=core + 1, core=core)
            out = alloc.alloc_pages(task, order=0)
            node = alloc.pool.node_of_frame(out.pfn)
            assert node == tiny.topology.node_of_core(core)
            assert not out.colored

    def test_higher_orders_supported(self, tiny, alloc):
        task = TaskStruct(tid=1, core=0)
        out = alloc.alloc_pages(task, order=4)
        assert out.order == 4
        assert all(
            alloc.pool.state[f] == FrameState.ALLOCATED
            for f in range(out.pfn, out.pfn + 16)
        )

    def test_falls_back_to_remote_when_local_exhausted(self):
        tiny = tiny_machine(memory_bytes=4 * MIB)
        alloc = PageAllocator(FramePool(tiny.mapping), tiny.topology)
        task = TaskStruct(tid=1, core=0)
        per_node = alloc.pool.frames_per_node
        seen_nodes = set()
        for _ in range(per_node + 1):
            out = alloc.alloc_pages(task, 0)
            seen_nodes.add(alloc.pool.node_of_frame(out.pfn))
        assert seen_nodes == {0, 1}

    def test_exhaustion_returns_none(self):
        tiny = tiny_machine(memory_bytes=4 * MIB)
        alloc = PageAllocator(FramePool(tiny.mapping), tiny.topology)
        task = TaskStruct(tid=1, core=0)
        total = alloc.pool.num_frames
        for _ in range(total):
            assert alloc.alloc_pages(task, 0) is not None
        assert alloc.alloc_pages(task, 0) is None


class TestColoredPath:
    def test_colored_page_matches_both(self, tiny, alloc):
        mapping = tiny.mapping
        mem = list(mapping.bank_colors_of_node(0))[:8]
        llc = [0]
        task = colored_task(tiny, core=0, mem=mem, llc=llc)
        for _ in range(20):
            out = alloc.alloc_pages(task, 0)
            assert out.colored
            assert int(alloc.pool.bank_color[out.pfn]) in mem
            assert int(alloc.pool.llc_color[out.pfn]) == 0

    def test_mem_only(self, tiny, alloc):
        task = colored_task(tiny, core=0, mem=[2, 3])
        out = alloc.alloc_pages(task, 0)
        assert int(alloc.pool.bank_color[out.pfn]) in (2, 3)

    def test_llc_only_stays_local_until_node_exhausted(self, tiny, alloc):
        task = colored_task(tiny, core=2, llc=[1])  # core 2 -> node 1
        for _ in range(50):
            out = alloc.alloc_pages(task, 0)
            assert int(alloc.pool.llc_color[out.pfn]) == 1
            assert alloc.pool.node_of_frame(out.pfn) == 1

    def test_order_gt_zero_bypasses_coloring(self, tiny, alloc):
        """Paper §III-C: orders greater than zero default to the standard
        buddy allocator."""
        task = colored_task(tiny, core=0, mem=[0], llc=[0])
        out = alloc.alloc_pages(task, order=1)
        assert not out.colored

    def test_colored_exhaustion_returns_none(self, tiny_small):
        alloc = PageAllocator(FramePool(tiny_small.mapping), tiny_small.topology)
        mapping = tiny_small.mapping
        mem = [mapping.compatible_bank_colors(0, node=0)[0]]
        task = colored_task(tiny_small, core=0, mem=mem, llc=[0])
        count = 0
        while True:
            out = alloc.alloc_pages(task, 0)
            if out is None:
                break
            count += 1
        # Exactly the frames of that (bank, llc) combo were available.
        assert count == mapping.frames_per_combo()

    def test_refills_counted(self, tiny, alloc):
        task = colored_task(tiny, core=0, mem=[0], llc=[0])
        out = alloc.alloc_pages(task, 0)
        assert out.refills > 0
        assert alloc.refill_blocks >= out.refills

    def test_leftovers_feed_later_requests(self, tiny, alloc):
        """Frames shattered by one task's refill serve other tasks without
        new refills."""
        mapping = tiny.mapping
        t1 = colored_task(tiny, core=0, mem=[0], llc=list(
            mapping.compatible_llc_colors(0))[:1], tid=1)
        alloc.alloc_pages(t1, 0)
        # Another color of the same node: stock likely present already.
        llc2 = mapping.compatible_llc_colors(1)[0]
        t2 = colored_task(tiny, core=0, mem=[1], llc=[llc2], tid=2)
        out = alloc.alloc_pages(t2, 0)
        assert out is not None


class TestFreePath:
    def test_colored_free_returns_to_color_list(self, tiny, alloc):
        task = colored_task(tiny, core=0, mem=[0])
        out = alloc.alloc_pages(task, 0)
        before = alloc.colors.total_free
        alloc.free_pages(task, out.pfn, 0)
        assert alloc.colors.total_free == before + 1
        assert alloc.pool.state[out.pfn] == FrameState.COLORED_FREE

    def test_uncolored_free_returns_to_buddy(self, tiny, alloc):
        task = TaskStruct(tid=1, core=0)
        out = alloc.alloc_pages(task, 0)
        free_before = alloc.node_buddies[0].free_frames()
        alloc.free_pages(task, out.pfn, 0)
        assert alloc.node_buddies[0].free_frames() == free_before + 1

    def test_free_unallocated_rejected(self, tiny, alloc):
        task = TaskStruct(tid=1, core=0)
        with pytest.raises(ValueError):
            alloc.free_pages(task, 0, 0)

    def test_conservation_total(self, tiny, alloc):
        task = colored_task(tiny, core=0, mem=[0, 1], llc=[0, 2])
        total = alloc.pool.num_frames
        outs = [alloc.alloc_pages(task, 0) for _ in range(10)]
        held = len(outs)
        assert alloc.free_frames_total() == total - held
        for out in outs:
            alloc.free_pages(task, out.pfn, 0)
        assert alloc.free_frames_total() == total
