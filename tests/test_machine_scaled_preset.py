"""Tests for the 1:4-scaled Opteron preset used by the bench harness."""

import pytest

from repro.machine.presets import opteron_6128, opteron_6128_scaled
from repro.machine.pci import probe_address_mapping
from repro.util.units import GIB, MIB


class TestScaledPreset:
    def test_same_color_structure_as_full(self):
        full = opteron_6128()
        scaled = opteron_6128_scaled()
        assert scaled.mapping.num_bank_colors == full.mapping.num_bank_colors
        assert scaled.mapping.num_llc_colors == full.mapping.num_llc_colors
        assert scaled.mapping.fields["bank"] == full.mapping.fields["bank"]
        assert scaled.topology.num_cores == full.topology.num_cores

    def test_caches_quartered(self):
        full = opteron_6128()
        scaled = opteron_6128_scaled()
        for level in ("l1", "l2", "llc"):
            assert (
                getattr(scaled.topology, level).size_bytes * 4
                == getattr(full.topology, level).size_bytes
            )

    def test_llc_color_to_set_ratio_preserved(self):
        """Each LLC color owns size/32 of the cache in both presets."""
        full = opteron_6128()
        scaled = opteron_6128_scaled()
        assert full.topology.llc.num_sets % 32 == 0
        assert scaled.topology.llc.num_sets % 32 == 0

    def test_pci_probe_roundtrip(self):
        spec = opteron_6128_scaled(512 * MIB)
        assert probe_address_mapping(spec.pci) == spec.mapping

    def test_memory_floor(self):
        with pytest.raises(ValueError):
            opteron_6128_scaled(32 * MIB)
        with pytest.raises(ValueError):
            opteron_6128_scaled(3 * GIB)  # not a power of two

    def test_compatibility_structure_matches_full(self):
        full = opteron_6128().mapping
        scaled = opteron_6128_scaled().mapping
        for bc in (0, 31, 64, 127):
            assert full.compatible_llc_colors(bc) == scaled.compatible_llc_colors(bc)


class TestFourSocketPreset:
    def test_structure(self):
        from repro.machine.presets import opteron_4s

        spec = opteron_4s()
        assert spec.topology.num_sockets == 4
        assert spec.topology.num_cores == 32
        assert spec.mapping.num_nodes == 8
        assert spec.mapping.num_bank_colors == 256
        assert spec.mapping.num_llc_colors == 32
        assert spec.mapping.fields["bank"] == (15, 16, 18)

    def test_hops_across_four_sockets(self):
        from repro.machine.presets import opteron_4s

        topo = opteron_4s().topology
        assert topo.hops(0, 0) == 0
        assert topo.hops(0, 1) == 1  # same socket
        assert topo.hops(0, 7) == 2  # cross socket

    def test_pci_roundtrip(self):
        from repro.machine.presets import opteron_4s

        spec = opteron_4s()
        assert probe_address_mapping(spec.pci) == spec.mapping

    def test_memory_floor(self):
        from repro.machine.presets import opteron_4s

        with pytest.raises(ValueError):
            opteron_4s(64 * MIB)
