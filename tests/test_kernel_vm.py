"""Unit tests for VMAs, page tables, and demand paging."""

import pytest

from repro.kernel.task import TaskStruct
from repro.kernel.vm import MMAP_BASE, AddressSpace, PageFault


@pytest.fixture
def space():
    next_pfn = iter(range(100, 100_000, 512))  # block-aligned supply
    faults = []

    def handler(task, vpn, order):
        faults.append((task.tid, vpn, order))
        return next(next_pfn)

    s = AddressSpace(page_bits=12, fault_handler=handler)
    s._test_faults = faults  # type: ignore[attr-defined]
    return s


@pytest.fixture
def task():
    return TaskStruct(tid=7, core=0)


class TestVma:
    def test_map_region_page_rounds(self, space):
        vma = space.map_region(100)
        assert vma.length == 4096
        assert vma.start == MMAP_BASE

    def test_regions_do_not_overlap(self, space):
        a = space.map_region(8192)
        b = space.map_region(4096)
        assert a.end <= b.start

    def test_guard_gap_between_regions(self, space):
        a = space.map_region(4096)
        b = space.map_region(4096)
        assert b.start - a.end >= 4096

    def test_zero_length_rejected(self, space):
        with pytest.raises(ValueError):
            space.map_region(0)

    def test_vma_of(self, space):
        vma = space.map_region(8192)
        assert space.vma_of(vma.start) is vma
        assert space.vma_of(vma.end) is None


class TestDemandPaging:
    def test_first_touch_faults(self, space, task):
        vma = space.map_region(8192)
        paddr, faulted = space.translate(vma.start, task)
        assert faulted
        assert space.resident_pages == 1
        assert space._test_faults == [(7, vma.start >> 12, 0)]

    def test_second_touch_no_fault(self, space, task):
        vma = space.map_region(4096)
        space.translate(vma.start, task)
        _, faulted = space.translate(vma.start + 100, task)
        assert not faulted

    def test_offset_preserved(self, space, task):
        vma = space.map_region(4096)
        paddr, _ = space.translate(vma.start + 123, task)
        assert paddr & 0xFFF == 123

    def test_unmapped_raises(self, space, task):
        with pytest.raises(PageFault):
            space.translate(0xDEAD000, task)

    def test_first_toucher_recorded(self, space):
        vma = space.map_region(8192)
        t1, t2 = TaskStruct(tid=1, core=0), TaskStruct(tid=2, core=1)
        space.translate(vma.start, t1)
        space.translate(vma.start + 4096, t2)
        assert space.first_toucher[vma.start >> 12] == 1
        assert space.first_toucher[(vma.start >> 12) + 1] == 2


class TestUnmap:
    def test_unmap_returns_populated_pfns(self, space, task):
        vma = space.map_region(3 * 4096)
        space.translate(vma.start, task)
        space.translate(vma.start + 2 * 4096, task)
        released = space.unmap_region(vma)
        assert len(released) == 2

    def test_unmap_clears_translations(self, space, task):
        vma = space.map_region(4096)
        space.translate(vma.start, task)
        space.unmap_region(vma)
        with pytest.raises(PageFault):
            space.translate(vma.start, task)

    def test_populated_pages_iterates(self, space, task):
        vma = space.map_region(2 * 4096)
        space.translate(vma.start, task)
        pages = dict(space.populated_pages())
        assert (vma.start >> 12) in pages


class TestHugePages:
    def test_huge_vma_rounded_and_aligned(self, space):
        vma = space.map_region(3 * 1024 * 1024, page_order=9)
        assert vma.length == 4 * 1024 * 1024  # rounded to 2 MiB units
        assert vma.start % (2 * 1024 * 1024) == 0

    def test_one_fault_populates_whole_block(self, space, task):
        vma = space.map_region(2 * 1024 * 1024, page_order=9)
        _, faulted = space.translate(vma.start + 5 * 4096, task)
        assert faulted
        assert space.resident_pages == 512
        # Exactly one fault, at the aligned base, with the huge order.
        assert space._test_faults == [(7, vma.start >> 12, 9)]

    def test_block_translations_contiguous(self, space, task):
        vma = space.map_region(2 * 1024 * 1024, page_order=9)
        p0, _ = space.translate(vma.start, task)
        p1, _ = space.translate(vma.start + 4096, task)
        assert p1 - p0 == 4096

    def test_second_touch_within_block_no_fault(self, space, task):
        vma = space.map_region(2 * 1024 * 1024, page_order=9)
        space.translate(vma.start, task)
        _, faulted = space.translate(vma.start + 100 * 4096, task)
        assert not faulted

    def test_negative_order_rejected(self, space):
        with pytest.raises(ValueError):
            space.map_region(4096, page_order=-1)
