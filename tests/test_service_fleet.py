"""Distributed fleet, end to end: real server + real worker processes.

The headline suite for the fleet executor.  Each integration test
boots the line-JSON TCP server (fleet executor) in a background event
loop, spawns ``python -m repro.service worker`` OS processes that pull
jobs over the wire, and drives load through the shared scheduler:

* a 64-arrival zipf LoadGen schedule drains to results bit-identical
  to a serial inline run of the same catalog;
* SIGKILLing a worker mid-flight re-queues its leased jobs onto the
  survivors (lease expiry, not scheduler retries) and everything still
  completes;
* stitched traces keep one causal tree per job spanning gateway →
  scheduler → worker across three+ OS processes.

The FakeClock unit tests at the bottom pin the coordinator's lease
state machine (expiry, re-route, stale tokens, re-queue budget)
without any real process or real time.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.stitch import (
    TraceCollector,
    span_index,
    trace_roots,
    write_stitched_perfetto,
)
from repro.service import FakeClock, JobSpec, ServiceClient, ServiceServer
from repro.service.fleet import FleetCoordinator
from repro.service.loadgen import LoadGen

REPO_ROOT = Path(__file__).resolve().parent.parent

# Compressed burst phases so open-loop replay takes ~1s of wall clock.
FAST_PHASES = ((0.4, 48.0), (0.4, 120.0), (0.2, 64.0))


class FleetHarness:
    """A fleet service plus N real worker subprocesses."""

    def __init__(self, workers: int = 3, shards: int = 8,
                 lease_timeout_s: float = 4.0, heartbeat_s: float = 1.0):
        self.registry = MetricsRegistry()
        self.collector = TraceCollector()
        self.fleet = FleetCoordinator(
            lease_timeout_s=lease_timeout_s, heartbeat_s=heartbeat_s,
            metrics=self.registry, traces=self.collector,
        )
        self.client = ServiceClient(
            store=":memory:", shards=shards, executor="fleet",
            metrics=self.registry, traces=self.collector, fleet=self.fleet,
        )
        self.server = ServiceServer(self.client, port=0)
        self.procs: list[subprocess.Popen] = []
        self._workers = workers
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "FleetHarness":
        started = threading.Event()
        self._loop = asyncio.new_event_loop()

        def _runner() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            started.set()
            self._loop.run_until_complete(self.server.serve_forever())
            self._loop.close()

        self._thread = threading.Thread(target=_runner, daemon=True)
        self._thread.start()
        assert started.wait(timeout=10), "TCP server failed to start"
        for _ in range(self._workers):
            self.spawn_worker()
        self.wait_live(self._workers)
        return self

    def spawn_worker(self) -> subprocess.Popen:
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "worker",
             "--connect", f"127.0.0.1:{self.server.port}",
             "--poll-timeout", "0.5"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        self.procs.append(proc)
        return proc

    def wait_live(self, n: int, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while self.fleet.stats()["live_workers"] < n:
            assert time.monotonic() < deadline, (
                f"only {self.fleet.stats()['live_workers']}/{n} workers "
                "registered in time"
            )
            time.sleep(0.05)

    def __exit__(self, *exc) -> None:
        for proc in self.procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in self.procs:
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
        self.client.close()
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.server._stop.set)
            self._thread.join(timeout=15)


def _canon(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


# --------------------------------------------------------------- integration
def test_fleet_drains_zipf_load_bit_identical_to_serial():
    """3 pull workers drain 64 zipf arrivals; results match a serial run."""
    gen = LoadGen(seed=20, jobs=64, catalog=24, zipf_s=1.0,
                  phases=FAST_PHASES)
    with FleetHarness(workers=3) as harness:
        handles = {}
        gen.run(lambda spec, arrival: handles.setdefault(
            spec.digest(), harness.client.submit(spec)))
        fleet_records = {
            digest: handle.result(timeout=120)
            for digest, handle in handles.items()
        }
        assert harness.client.drain(timeout=60)
        stats = harness.fleet.stats()
        per_worker = [w["completed"] for w in stats["workers"].values()]
        assert stats["completed_ok"] == len(fleet_records)
        assert len(per_worker) == 3
        assert sum(1 for c in per_worker if c > 0) >= 2, (
            f"consistent-hash routing used too few workers: {per_worker}"
        )

    with ServiceClient(store=":memory:", shards=1,
                       executor="inline") as serial:
        serial_records = {
            spec.digest(): serial.submit(spec).result(timeout=120)
            for spec in gen.catalog_specs()
        }

    assert set(fleet_records) <= set(serial_records)
    for digest, record in fleet_records.items():
        assert _canon(record) == _canon(serial_records[digest]), (
            f"fleet result for {digest[:12]} differs from serial run"
        )


def test_sigkilled_worker_jobs_requeue_and_complete():
    """SIGKILL one worker mid-flight: its leases re-queue transparently."""
    with FleetHarness(workers=3, lease_timeout_s=1.0,
                      heartbeat_s=0.25) as harness:
        specs = [JobSpec(kind="sleep", bench="sleep", config="400ms",
                         rep=i, profile="mini") for i in range(12)]
        handles = [harness.client.submit(spec) for spec in specs]

        victim_id = None
        deadline = time.monotonic() + 30
        while victim_id is None:
            assert time.monotonic() < deadline, "no worker took a lease"
            for wid, info in harness.fleet.stats()["workers"].items():
                if info["leased"] > 0:
                    victim_id = wid
                    victim_pid = info["pid"]
                    break
            time.sleep(0.02)
        victim = next(p for p in harness.procs if p.pid == victim_pid)
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=10)

        for handle in handles:
            record = handle.result(timeout=120)
            assert record["duration_ms"] == 400.0
        stats = harness.fleet.stats()
        assert stats["requeued"] >= 1, (
            "killing a leased worker must re-queue its jobs"
        )
        assert stats["requeue_exhausted"] == 0
        assert stats["completed_ok"] == len(specs)
        assert victim_id not in stats["workers"], "dead worker still listed"
        # Re-queue is transparent: the scheduler never saw a crash.
        sched = harness.client.stats()
        assert sched["crashes"] == 0 and sched["retries"] == 0


def test_stitched_traces_span_gateway_scheduler_and_workers(tmp_path):
    """One causal tree per job: gateway -> scheduler -> remote worker."""
    from repro.service.gateway import AsyncGatewayClient, GatewayServer

    with FleetHarness(workers=3) as harness:
        gateway_holder = {}

        async def _start_gateway():
            gateway = GatewayServer(harness.client, port=0)
            await gateway.start()
            gateway_holder["gw"] = gateway
            return gateway.port

        port = asyncio.run_coroutine_threadsafe(
            _start_gateway(), harness._loop).result(timeout=10)

        async def _drive() -> list[str]:
            api = AsyncGatewayClient("127.0.0.1", port)
            digests = []
            for i in range(12):
                spec = JobSpec(kind="sleep", bench="sleep", config="30ms",
                               rep=i, profile="mini")
                code, resp = await api.submit(spec)
                assert code == 202, resp
                digests.append(resp["digest"])
            for digest in digests:
                code, resp = await api.result(digest, timeout=120)
                assert code == 200 and "record" in resp, resp
            return digests

        digests = asyncio.run(_drive())
        assert harness.client.drain(timeout=60)
        asyncio.run_coroutine_threadsafe(
            gateway_holder["gw"].stop(), harness._loop).result(timeout=10)
        spans = harness.collector.spans()

    roots = trace_roots(spans)
    index = span_index(spans)
    by_kind: dict[str, list[dict]] = {}
    for span in spans:
        by_kind.setdefault(span["name"].split(":")[0], []).append(span)

    assert len(by_kind["gateway.request"]) == 12
    assert len(by_kind["worker.attempt"]) == 12
    for trace_id, root_spans in roots.items():
        assert len(root_spans) == 1, (
            f"trace {trace_id[:12]} has {len(root_spans)} roots"
        )
        assert root_spans[0]["name"].startswith("gateway.request")
    want = {"client.submit": "gateway.request",
            "sched.job": "client.submit",
            "sched.attempt": "sched.job",
            "worker.attempt": "sched.attempt"}
    for kind, expected_parent in want.items():
        for span in by_kind[kind]:
            parent = index.get(span.get("parent_span_id"))
            assert parent is not None, f"{kind} span has no parent"
            assert parent["name"].split(":")[0] == expected_parent

    server_pid = os.getpid()
    worker_pids = {span["pid"] for span in by_kind["worker.attempt"]}
    assert server_pid not in worker_pids, (
        "worker attempts must come from worker processes"
    )
    assert len(worker_pids) >= 2, (
        f"12 jobs should hash across >= 2 workers, saw pids {worker_pids}"
    )
    gateway_pids = {span["pid"] for span in by_kind["gateway.request"]}
    assert gateway_pids == {server_pid}

    out = tmp_path / "fleet_trace.json"
    write_stitched_perfetto(spans, str(out))
    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    procs = {e["args"]["name"].split(" ")[0] for e in events
             if e.get("ph") == "M" and e.get("name") == "process_name"}
    assert {"gateway", "scheduler", "worker"} <= procs


# ------------------------------------------------------- FakeClock unit tests
def _spec(i: int = 0) -> JobSpec:
    return JobSpec(kind="sleep", bench="sleep", config="1ms", rep=i,
                   profile="mini")


def _execute_in_thread(coord: FleetCoordinator, spec: JobSpec):
    """Run coord.execute on a thread; returns (thread, outcome-box)."""
    box: dict = {}

    def _run() -> None:
        box["outcome"] = coord.execute(spec, spec.digest())

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    return thread, box


def test_lease_expiry_requeues_to_surviving_worker():
    clock = FakeClock()
    coord = FleetCoordinator(lease_timeout_s=5.0, clock=clock,
                             metrics=None, poll_interval_s=0.005)
    first = coord.register(worker_id="doomed", pid=111)["worker_id"]
    thread, box = _execute_in_thread(coord, _spec())
    lease = coord.poll(first, timeout=1.0)
    assert lease and lease["token"]

    # The worker goes silent past the lease timeout; a survivor joins
    # and inherits the re-queued job.
    clock.advance(6.0)
    survivor = coord.register(worker_id="survivor", pid=222)["worker_id"]
    release = coord.poll(survivor, timeout=5.0)
    assert release and release["digest"] == lease["digest"]
    assert release["token"] != lease["token"]
    assert coord.complete(survivor, release["token"], "ok", {"fine": True})
    thread.join(timeout=10)
    assert box["outcome"] == ("ok", {"fine": True})
    stats = coord.stats()
    assert stats["expired_workers"] == 1
    assert stats["requeued"] == 1
    assert first not in stats["workers"]


def test_stale_token_result_is_dropped():
    clock = FakeClock()
    coord = FleetCoordinator(lease_timeout_s=5.0, clock=clock,
                             metrics=None, poll_interval_s=0.005)
    coord.register(worker_id="w1", pid=1)
    coord.register(worker_id="w2", pid=2)
    thread, box = _execute_in_thread(coord, _spec())
    # Find which worker owns the job's digest, lease it, then let only
    # the lease (not the worker) expire via heartbeats without renewal.
    lease = None
    for wid in ("w1", "w2"):
        lease = coord.poll(wid, timeout=0.05)
        if lease:
            owner = wid
            break
    assert lease is not None
    # Age the token in sub-timeout steps while both workers keep
    # heartbeating (alive) but never renew the lease token: only the
    # per-lease expiry can fire, not the whole-worker one.
    deadline = time.monotonic() + 10
    while coord.stats()["requeued"] == 0:
        assert time.monotonic() < deadline, "lease never expired"
        clock.advance(2.0)
        assert coord.heartbeat("w1", running=[])
        assert coord.heartbeat("w2", running=[])
        time.sleep(0.01)
    # The original worker finally reports: too late, token is dead.
    assert coord.complete(owner, lease["token"], "ok", {"late": True}) is False
    assert coord.stats()["stale_results"] == 1
    # The re-queued lease still completes the job.
    release = None
    deadline = time.monotonic() + 10
    while release is None:
        assert time.monotonic() < deadline
        for wid in ("w1", "w2"):
            release = coord.poll(wid, timeout=0.05)
            if release:
                winner = wid
                break
    assert coord.complete(winner, release["token"], "ok", {"fine": 1})
    thread.join(timeout=10)
    assert box["outcome"] == ("ok", {"fine": 1})


def test_requeue_budget_exhaustion_surfaces_as_crash():
    clock = FakeClock()
    coord = FleetCoordinator(lease_timeout_s=2.0, requeue_limit=1,
                             clock=clock, metrics=None,
                             poll_interval_s=0.005)
    coord.register(worker_id="flaky", pid=9)
    thread, box = _execute_in_thread(coord, _spec())
    for _ in range(2):
        lease = None
        deadline = time.monotonic() + 10
        while lease is None:
            assert time.monotonic() < deadline
            lease = coord.poll("flaky", timeout=0.05)
        # Keep the worker alive but never renew the lease token.
        clock.advance(3.0)
        assert coord.heartbeat("flaky", running=[])
        deadline = time.monotonic() + 10
        while coord.stats()["workers"].get("flaky", {}).get("leased"):
            assert time.monotonic() < deadline
            clock.advance(0.5)
            time.sleep(0.01)
    thread.join(timeout=10)
    kind, message = box["outcome"]
    assert kind == "crash"
    assert "re-queue budget exhausted" in message
    assert coord.stats()["requeue_exhausted"] == 1


def test_execute_without_workers_times_out_as_crash_or_timeout():
    clock = FakeClock()
    coord = FleetCoordinator(clock=clock, metrics=None,
                             poll_interval_s=0.005)
    spec = _spec()
    thread, box = _execute_in_thread(coord, spec)
    time.sleep(0.05)
    assert coord.stats()["unrouted"] == 1
    # A worker arriving later picks up the stranded job.
    coord.register(worker_id="late", pid=5)
    lease = None
    deadline = time.monotonic() + 10
    while lease is None:
        assert time.monotonic() < deadline
        lease = coord.poll("late", timeout=0.05)
    assert coord.complete("late", lease["token"], "ok", {"ok": 1})
    thread.join(timeout=10)
    assert box["outcome"] == ("ok", {"ok": 1})


@pytest.mark.parametrize("kind,payload", [("ok", {"x": 1}), ("err", "boom")])
def test_complete_outcome_kinds_round_trip(kind, payload):
    coord = FleetCoordinator(metrics=None, poll_interval_s=0.005)
    coord.register(worker_id="w", pid=1)
    thread, box = _execute_in_thread(coord, _spec())
    lease = None
    deadline = time.monotonic() + 10
    while lease is None:
        assert time.monotonic() < deadline
        lease = coord.poll("w", timeout=0.05)
    assert coord.complete("w", lease["token"], kind, payload)
    thread.join(timeout=10)
    assert box["outcome"] == (kind, payload)
