"""The per-frame decode memo: correctness and invalidation.

``AddressMapping.frame_decode`` caches one :class:`DecodedAddress` per
touched frame; the whole fast path (DRAM routing, bank coloring) leans on
it, so it must (a) agree exactly with the scalar decode helpers for any
address, and (b) never leak entries across mapping instances — a
*different* mapping decodes the same pfn differently, so the memo is
strictly per-instance state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.address import AddressMapping
from repro.machine.presets import opteron_6128, opteron_6128_scaled

from .test_properties_address import mappings


@pytest.fixture
def mapping():
    return opteron_6128(256 * 1024 * 1024).mapping


class TestFrameDecodeCorrectness:
    @settings(max_examples=50, deadline=None)
    @given(mappings(), st.data())
    def test_roundtrip_through_memo(self, m, data):
        """decode(compose(fields)) == fields, via the frame memo."""
        node = data.draw(st.integers(0, m.num_nodes - 1))
        ch = data.draw(st.integers(0, m.num_channels - 1))
        rank = data.draw(st.integers(0, m.num_ranks - 1))
        bank = data.draw(st.integers(0, m.num_banks - 1))
        free_bits = m.total_bits - sum(len(p) for p in m.fields.values())
        rest = data.draw(st.integers(0, (1 << free_bits) - 1))
        paddr = m.compose(node, ch, rank, bank, rest)
        d = m.frame_decode(paddr >> m.page_bits)
        assert (d.node, d.channel, d.rank, d.bank) == (node, ch, rank, bank)
        assert d.bank_color == m.compose_bank_color(node, ch, rank, bank)

    @settings(max_examples=30, deadline=None)
    @given(mappings(), st.data())
    def test_memo_matches_scalar_helpers(self, m, data):
        """Random addresses: memoized decode == per-call scalar decode."""
        paddr = data.draw(st.integers(0, (1 << m.total_bits) - 1))
        pfn = paddr >> m.page_bits
        d = m.frame_decode(pfn)
        assert d.pfn == pfn
        assert d.bank_color == m.bank_color(paddr)
        assert d.llc_color == m.llc_color(paddr)
        loc = m.decode(paddr)
        assert (d.node, d.channel, d.rank, d.bank) == (
            loc.node, loc.channel, loc.rank, loc.bank
        )

    def test_page_offset_invariance(self, mapping):
        """Every byte of a frame decodes to the frame's cached route."""
        pfn = 1234
        d = mapping.frame_decode(pfn)
        base = pfn << mapping.page_bits
        for off in (0, 63, 64, mapping.page_bytes - 1):
            assert mapping.bank_color(base + off) == d.bank_color
            assert mapping.llc_color(base + off) == d.llc_color


class TestFrameDecodeCache:
    def test_memo_is_populated_and_reused(self, mapping):
        mapping.clear_frame_decode_cache()
        assert mapping.frame_decode_cache_size == 0
        first = mapping.frame_decode(77)
        assert mapping.frame_decode_cache_size == 1
        # Same object back, not merely an equal one: a dict hit.
        assert mapping.frame_decode(77) is first
        assert mapping.frame_decode_cache_size == 1
        mapping.frame_decode(78)
        assert mapping.frame_decode_cache_size == 2

    def test_clear_empties_the_memo(self, mapping):
        mapping.frame_decode(5)
        mapping.frame_decode(6)
        assert mapping.frame_decode_cache_size >= 2
        mapping.clear_frame_decode_cache()
        assert mapping.frame_decode_cache_size == 0
        # Still correct after clearing.
        assert mapping.frame_decode(5).bank_color == mapping.frame_bank_color(5)

    def test_instances_do_not_share_entries(self):
        """A new mapping (different bit layout) must not see stale routes."""
        full = opteron_6128(256 * 1024 * 1024).mapping
        scaled = opteron_6128_scaled(256 * 1024 * 1024).mapping
        pfn = 99
        a = full.frame_decode(pfn)
        b = scaled.frame_decode(pfn)
        assert a is not b
        # Each memo answers for its own layout.
        assert a.bank_color == full.frame_bank_color(pfn)
        assert b.bank_color == scaled.frame_bank_color(pfn)
        # Clearing one instance leaves the other's memo intact.
        full.clear_frame_decode_cache()
        assert full.frame_decode_cache_size == 0
        assert scaled.frame_decode_cache_size == 1

    def test_equal_layouts_still_have_private_memos(self):
        m1 = opteron_6128(256 * 1024 * 1024).mapping
        m2 = opteron_6128(256 * 1024 * 1024).mapping
        m1.frame_decode(3)
        assert m1.frame_decode_cache_size == 1
        assert m2.frame_decode_cache_size == 0


def test_dram_route_memo_survives_reset():
    """DramSystem.reset() keeps frame routes (mapping is immutable)."""
    from repro.dram.system import DramSystem
    from repro.machine.presets import opteron_6128 as preset

    spec = preset(256 * 1024 * 1024)
    system = DramSystem(spec.mapping, spec.topology)
    r1 = system.access(0x10000, core=0, now=0.0)
    assert system._frame_route  # memo populated
    routes = dict(system._frame_route)
    system.reset()
    assert system._frame_route == routes
    r2 = system.access(0x10000, core=0, now=0.0)
    assert (r1.latency, r1.node, r1.bank_color) == (
        r2.latency, r2.node, r2.bank_color
    )
