"""Unit + property tests for the colored free-page matrix."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.colorlist import ColorMatrix
from repro.kernel.frame import FramePool, FrameState
from repro.machine.presets import tiny_machine


@pytest.fixture
def pool(tiny):
    return FramePool(tiny.mapping)


@pytest.fixture
def matrix(pool):
    return ColorMatrix(pool)


def find_frame(pool, mem=None, llc=None, exclude=()):
    for pfn in range(pool.num_frames):
        if pfn in exclude:
            continue
        if mem is not None and pool.bank_color[pfn] != mem:
            continue
        if llc is not None and pool.llc_color[pfn] != llc:
            continue
        return pfn
    raise AssertionError("no frame with requested colors")


class TestPushPop:
    def test_push_then_pop_exact(self, pool, matrix):
        pfn = find_frame(pool, mem=3)
        llc = int(pool.llc_color[pfn])
        matrix.push(pfn)
        assert matrix.total_free == 1
        got = matrix.pop_matching([3], [llc])
        assert got == pfn
        assert matrix.total_free == 0

    def test_pop_respects_mem_constraint(self, pool, matrix):
        pfn = find_frame(pool, mem=3)
        matrix.push(pfn)
        assert matrix.pop_matching([4], None) is None
        assert matrix.pop_matching([3], None) == pfn

    def test_pop_respects_llc_constraint(self, pool, matrix):
        pfn = find_frame(pool, llc=1)
        matrix.push(pfn)
        assert matrix.pop_matching(None, [0]) is None
        assert matrix.pop_matching(None, [1]) == pfn

    def test_pop_both_constraints_must_match_jointly(self, pool, matrix):
        a = find_frame(pool, mem=0)
        llc_a = int(pool.llc_color[a])
        other_llc = (llc_a + 1) % pool.mapping.num_llc_colors
        matrix.push(a)
        assert matrix.pop_matching([0], [other_llc]) is None
        assert matrix.pop_matching([0], [llc_a]) == a

    def test_pop_requires_some_constraint(self, matrix):
        with pytest.raises(ValueError):
            matrix.pop_matching(None, None)

    def test_push_updates_frame_state(self, pool, matrix):
        matrix.push(0)
        assert pool.state[0] == FrameState.COLORED_FREE

    def test_double_push_rejected(self, pool, matrix):
        matrix.push(0)
        with pytest.raises(ValueError):
            matrix.push(0)


class TestRotation:
    def test_pops_rotate_across_colors(self, pool, matrix):
        """A task with several colors should receive pages spread over
        them, not drain one list first."""
        mem_colors = [0, 1]
        for mc in mem_colors:
            for _ in range(4):
                pfn = find_frame(
                    pool, mem=mc,
                    exclude={p for b in matrix._lists.values() for p in b},
                )
                matrix.push(pfn)
        got_colors = [
            int(pool.bank_color[matrix.pop_matching(mem_colors, None)])
            for _ in range(4)
        ]
        assert set(got_colors) == {0, 1}


class TestPreference:
    def test_mem_preference_orders_unconstrained_pop(self, pool, matrix):
        llc = 0
        # Pick bank colors compatible with llc 0 on each node.
        mapping = pool.mapping
        local_color = mapping.compatible_bank_colors(llc, node=0)[0]
        remote_color = mapping.compatible_bank_colors(llc, node=1)[0]
        remote = find_frame(pool, mem=remote_color, llc=llc)
        local = find_frame(pool, mem=local_color, llc=llc)
        matrix.push(remote)
        matrix.push(local)
        node0 = list(pool.mapping.bank_colors_of_node(0))
        got = matrix.pop_matching(None, [llc], mem_preference=node0)
        assert got == local

    def test_preference_falls_back_to_any(self, pool, matrix):
        llc = 0
        remote = find_frame(pool, mem=16, llc=llc)
        matrix.push(remote)
        node0 = list(pool.mapping.bank_colors_of_node(0))
        got = matrix.pop_matching(None, [llc], mem_preference=node0)
        assert got == remote


class TestHasMatching:
    def test_has_matching_all_modes(self, pool, matrix):
        pfn = find_frame(pool, mem=2)
        llc = int(pool.llc_color[pfn])
        matrix.push(pfn)
        assert matrix.has_matching([2], None)
        assert matrix.has_matching(None, [llc])
        assert matrix.has_matching([2], [llc])
        assert not matrix.has_matching([3], None)
        assert not matrix.has_matching([2], [(llc + 1) % 4])


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 500), min_size=1, max_size=80, unique=True))
    def test_push_pop_conserves_and_indexes_stay_consistent(self, pfns):
        pool = FramePool(tiny_machine().mapping)
        matrix = ColorMatrix(pool)
        for pfn in pfns:
            matrix.push(pfn)
        matrix.check_invariants()
        popped = []
        while True:
            pfn = matrix.pop_matching(
                list(range(pool.mapping.num_bank_colors)), None
            )
            if pfn is None:
                break
            popped.append(pfn)
        assert sorted(popped) == sorted(pfns)
        matrix.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(0, 500), min_size=1, max_size=60, unique=True),
        st.integers(0, 31),
    )
    def test_pop_returns_only_requested_colors(self, pfns, mem_color):
        pool = FramePool(tiny_machine().mapping)
        matrix = ColorMatrix(pool)
        for pfn in pfns:
            matrix.push(pfn)
        while True:
            pfn = matrix.pop_matching([mem_color], None)
            if pfn is None:
                break
            assert int(pool.bank_color[pfn]) == mem_color
        matrix.check_invariants()
