"""Unit + integration tests for the experiment harness and figure builders."""

import pytest

from repro.alloc.policies import Policy
from repro.experiments.configs import CONFIG_ORDER, CONFIGS
from repro.experiments.figures import (
    best_other_policy,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    _index,
)
from repro.experiments.report import Claim, claims_table, records_to_csv
from repro.experiments.runner import (
    PROFILES,
    RunRecord,
    run_benchmark,
    run_synthetic,
    sweep,
)
from repro.machine.presets import opteron_6128


class TestConfigs:
    def test_all_five_present(self):
        assert set(CONFIG_ORDER) == set(CONFIGS)
        assert len(CONFIGS) == 5

    def test_paper_pinnings(self):
        assert CONFIGS["8_threads_4_nodes"].cores == (0, 1, 4, 5, 8, 9, 12, 13)
        assert CONFIGS["4_threads_4_nodes"].cores == (0, 4, 8, 12)
        assert CONFIGS["4_threads_1_nodes"].cores == (0, 1, 2, 3)

    def test_nodes_used(self):
        topo = opteron_6128().topology
        assert CONFIGS["16_threads_4_nodes"].nodes_used(topo) == (0, 1, 2, 3)
        assert CONFIGS["8_threads_2_nodes"].nodes_used(topo) == (0, 1)
        assert CONFIGS["4_threads_1_nodes"].nodes_used(topo) == (0,)


def fake_record(bench="lbm", policy="buddy", config="16_threads_4_nodes",
                rep=0, runtime=100.0, idle=10.0, threads=4):
    per = runtime / threads
    return RunRecord(
        bench=bench, policy=policy, config=config, rep=rep,
        runtime=runtime, parallel_runtime=runtime * 0.9,
        serial_runtime=runtime * 0.1, total_idle=idle,
        thread_runtimes=tuple(per * (1 + 0.1 * i) for i in range(threads)),
        thread_idles=tuple(idle / threads for _ in range(threads)),
        remote_fraction=0.1, row_hit_rate=0.5, row_conflicts=10,
        llc_miss_rate=0.5, dram_accesses=1000, faults=10,
    )


class TestFigureBuilders:
    def records(self):
        out = []
        for policy, rt in (
            ("buddy", 100.0), ("bpm", 130.0), ("mem+llc", 70.0),
            ("mem", 80.0), ("llc", 85.0), ("mem+llc(part)", 75.0),
            ("llc+mem(part)", 90.0),
        ):
            for rep in range(2):
                out.append(fake_record(policy=policy, runtime=rt + rep,
                                       idle=rt / 10, rep=rep))
        return out

    def test_fig11_normalization(self):
        fig = fig11(self.records())
        data = fig.data["16_threads_4_nodes"]["lbm"]
        assert data["buddy"].mean == pytest.approx(1.0, rel=0.01)
        assert data["mem+llc"].mean == pytest.approx(0.7, rel=0.02)
        assert data["bpm"].mean > 1.0

    def test_best_other_chosen_by_runtime(self):
        idx = _index(self.records())
        best = best_other_policy(idx, "lbm", "16_threads_4_nodes")
        assert best == "mem+llc(part)"  # 75 beats mem 80, llc 85, part 90

    def test_fig12_uses_idle(self):
        fig = fig12(self.records())
        data = fig.data["16_threads_4_nodes"]["lbm"]
        assert data["mem+llc"].mean == pytest.approx(0.7, rel=0.05)

    def test_fig13_per_thread_shape(self):
        fig = fig13(self.records(), "16_threads_4_nodes")
        rows = fig.data["lbm"]
        assert len(rows["buddy"]) == 4
        assert "mem+llc" in rows
        assert fig.spread("lbm", "buddy") > 0
        assert "t0" in fig.render("lbm")

    def test_fig14_idle_rows(self):
        fig = fig14(self.records(), "16_threads_4_nodes")
        rows = fig.data["lbm"]
        # Flat synthetic idles -> zero spread.
        assert fig.spread("lbm", "buddy") == pytest.approx(0.0)

    def test_fig10_requires_buddy(self):
        with pytest.raises(ValueError):
            fig10([fake_record(policy="mem")])

    def test_fig10_reduction(self):
        records = [
            fake_record(bench="synthetic", policy=p, runtime=rt)
            for p, rt in (("buddy", 100.0), ("llc", 95.0),
                          ("mem", 90.0), ("mem+llc", 83.0))
        ]
        f = fig10(records)
        assert f.reduction_vs_buddy() == pytest.approx(0.17, abs=0.01)
        assert "Fig. 10" in f.render()


class TestReport:
    def test_csv_roundtrip(self):
        csv_text = records_to_csv([fake_record()])
        assert "bench,policy" in csv_text.splitlines()[0]
        assert "lbm,buddy" in csv_text

    def test_claims_table(self):
        t = claims_table([
            Claim("lbm-runtime", paper=0.70, measured=0.75, holds=True),
            Claim("x", paper=1.0, measured=2.0, holds=False, note="off"),
        ])
        assert "| lbm-runtime | 0.700 | 0.750 | yes |" in t
        assert "| NO | off |" in t


class TestRunnerIntegration:
    """End-to-end runs on the mini profile (fast, shape-agnostic)."""

    def test_run_benchmark_record_sane(self):
        r = run_benchmark("lbm", Policy.MEM_LLC, "4_threads_4_nodes",
                          profile="mini")
        assert r.runtime > 0
        assert len(r.thread_runtimes) == 4
        assert r.faults > 0
        assert 0 <= r.remote_fraction <= 1

    def test_trace_seed_independent_of_policy(self):
        a = run_benchmark("art", Policy.BUDDY, "4_threads_4_nodes",
                          profile="mini", seed=7)
        b = run_benchmark("art", Policy.MEM, "4_threads_4_nodes",
                          profile="mini", seed=7)
        # Same workload: same access counts, different placement/timing.
        assert a.faults == b.faults
        assert a.runtime != b.runtime

    def test_reps_differ(self):
        a = run_benchmark("equake", Policy.BUDDY, "4_threads_4_nodes",
                          profile="mini", rep=0)
        b = run_benchmark("equake", Policy.BUDDY, "4_threads_4_nodes",
                          profile="mini", rep=1)
        assert a.runtime != b.runtime

    def test_run_synthetic(self):
        r = run_synthetic(Policy.MEM_LLC, "4_threads_4_nodes", profile="mini")
        assert r.bench == "synthetic"
        assert r.runtime > 0

    def test_sweep_sequential(self):
        records = sweep(
            ["lbm"], [Policy.BUDDY, Policy.MEM_LLC], ["4_threads_1_nodes"],
            reps=1, profile="mini", parallel=False,
        )
        assert len(records) == 2
        assert {r.policy for r in records} == {"buddy", "mem+llc"}

    def test_profiles_registered(self):
        assert {"full", "scaled", "mini"} <= set(PROFILES)
