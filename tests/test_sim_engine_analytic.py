"""Analytic cross-checks of the execution engine.

In regimes with closed-form expectations (single thread, no contention,
known hit levels) the engine's output must match first-order arithmetic,
not merely look plausible.
"""

import numpy as np
import pytest

from repro.alloc.policies import Policy
from repro.cache.hierarchy import CacheTiming
from repro.core.session import ColoredTeam
from repro.core.tintmalloc import TintMalloc
from repro.dram.timing import DramTiming
from repro.kernel.kernel import Kernel
from repro.machine.presets import tiny_machine
from repro.sim.barrier import Program, Section
from repro.sim.engine import Engine, MemorySystem
from repro.sim.trace import Trace

CT = CacheTiming()


def build(policy=Policy.BUDDY):
    machine = tiny_machine()
    kernel = Kernel(machine)
    tm = TintMalloc(kernel=kernel)
    team = ColoredTeam.create(tm, [0], policy)
    memory = MemorySystem.for_machine(machine)
    return machine, team, Engine(team, memory)


def repeated_line_trace(handle, n, think):
    base = handle.malloc(4096)
    return Trace(
        vaddrs=np.full(n, base, dtype=np.int64),
        writes=np.zeros(n, dtype=bool),
        think_ns=think,
    )


class TestClosedForm:
    def test_l1_hit_train_exact(self):
        """N accesses to one line: 1 fault+DRAM access, N-1 L1 hits."""
        machine, team, engine = build()
        n, think = 1000, 3.0
        trace = repeated_line_trace(team.handles[0], n, think)
        m = engine.run(Program([Section("parallel", {0: trace})], nthreads=1))
        t0 = m.threads[0]
        assert t0.faults == 1
        assert t0.dram_accesses == 1
        expected_hits_time = (n - 1) * (think + CT.l1_hit)
        overhead = m.runtime - expected_hits_time
        # The remainder is the single fault + DRAM access, bounded well
        # under a few microseconds.
        assert 0 < overhead < 5000.0

    def test_think_time_additivity(self):
        """Doubling think time adds exactly n * delta to the runtime."""
        runtimes = {}
        for think in (5.0, 10.0):
            machine, team, engine = build()
            trace = repeated_line_trace(team.handles[0], 500, think)
            m = engine.run(
                Program([Section("parallel", {0: trace})], nthreads=1)
            )
            runtimes[think] = m.runtime
        assert runtimes[10.0] - runtimes[5.0] == pytest.approx(500 * 5.0)

    def test_dram_latency_floor(self):
        """A cold single access costs at least the uncontended DRAM path:
        ctrl overhead + closed-row miss (+ cache probe)."""
        machine, team, engine = build()
        trace = repeated_line_trace(team.handles[0], 1, 0.0)
        m = engine.run(Program([Section("parallel", {0: trace})], nthreads=1))
        t = DramTiming()
        floor = t.ctrl_overhead + t.row_miss + CT.llc_hit
        assert m.runtime >= floor

    def test_access_conservation(self):
        """Engine-side counters equal trace lengths exactly."""
        machine, team, engine = build()
        line = machine.mapping.line_bytes
        base = team.handles[0].malloc(64 * 1024)
        n = 64 * 1024 // line
        trace = Trace(
            vaddrs=base + np.arange(n, dtype=np.int64) * line,
            writes=np.zeros(n, dtype=bool),
            think_ns=1.0,
        )
        m = engine.run(Program([Section("parallel", {0: trace})], nthreads=1))
        t0 = m.threads[0]
        assert t0.accesses == n
        stats = engine.memory.hierarchy.level_stats()
        assert stats["l1"].accesses == n
        # Every L1 miss flows down: l2 accesses == l1 misses, etc.
        assert stats["l2"].accesses == stats["l1"].misses
        assert stats["llc"].accesses == stats["l2"].misses
        assert m.dram.accesses == stats["llc"].misses

    def test_runtime_scales_linearly_with_trace_length(self):
        """The marginal cost of extra accesses is exactly think + L1 hit
        (the fixed fault/DRAM cost cancels in the difference)."""
        runtimes = {}
        for n in (400, 800):
            machine, team, engine = build()
            trace = repeated_line_trace(team.handles[0], n, 10.0)
            m = engine.run(
                Program([Section("parallel", {0: trace})], nthreads=1)
            )
            runtimes[n] = m.runtime
        marginal = runtimes[800] - runtimes[400]
        assert marginal == pytest.approx(400 * (10.0 + CT.l1_hit))
