"""Unit tests for the trace exporters (JSONL, Perfetto, counter CSV)."""

import csv
import io
import json

import numpy as np

from repro.obs import (
    Observer,
    counters_to_csv,
    export_run,
    to_jsonl,
    to_perfetto,
)


def recording_observer() -> Observer:
    obs = Observer(sample_interval_ns=0.0)
    obs.register_counter("dram.row_conflicts", lambda now: int(now) * 2)
    obs.register_counter("cache.llc.misses", lambda now: int(now) * 3)
    obs.span("compute", 0.0, 1000.0, track="engine", args={"kind": "parallel"})
    obs.span("dram.access", 100.0, 180.0, track="dram", tid=1,
             args={"bank": 5, "row": "conflict"})
    obs.instant("kernel.alloc.colored", 150.0, track="kernel", tid=3,
                args={"pfn": 42})
    obs.sample(100.0)
    obs.sample(200.0)
    return obs


class TestJsonl:
    def test_one_event_per_line_roundtrip(self):
        obs = recording_observer()
        lines = to_jsonl(obs).splitlines()
        # 3 events + 2 samples, each line independently parseable.
        assert len(lines) == 5
        parsed = [json.loads(line) for line in lines]
        assert [p["type"] for p in parsed] == [
            "span", "span", "instant", "sample", "sample",
        ]
        assert parsed[0]["name"] == "compute"
        assert parsed[2]["args"] == {"pfn": 42}
        assert parsed[4]["values"] == {
            "dram.row_conflicts": 400, "cache.llc.misses": 600,
        }

    def test_empty_observer(self):
        assert to_jsonl(Observer()) == ""


class TestPerfetto:
    def test_roundtrips_through_json(self):
        doc = to_perfetto(recording_observer())
        assert json.loads(json.dumps(doc)) == doc

    def test_event_schema(self):
        doc = to_perfetto(recording_observer())
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ns"
        for e in events:
            assert "ph" in e and "pid" in e and "tid" in e
            if e["ph"] != "M":
                assert "ts" in e
        spans = [e for e in events if e["ph"] == "X"]
        assert {s["name"] for s in spans} == {"compute", "dram.access"}
        # ts/dur are microseconds (trace_event spec); sim time is ns.
        compute = next(s for s in spans if s["name"] == "compute")
        assert compute["ts"] == 0.0 and compute["dur"] == 1.0
        instants = [e for e in events if e["ph"] == "i"]
        assert instants[0]["name"] == "kernel.alloc.colored"

    def test_tracks_become_processes(self):
        doc = to_perfetto(recording_observer())
        meta = {
            e["args"]["name"]: e["pid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert set(meta) == {"engine", "dram", "kernel", "counters"}
        span = next(e for e in doc["traceEvents"]
                    if e["ph"] == "X" and e["name"] == "dram.access")
        assert span["pid"] == meta["dram"]

    def test_counter_events(self):
        doc = to_perfetto(recording_observer())
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        # 2 samples x 2 counters.
        assert len(counters) == 4
        assert all("value" in c["args"] for c in counters)
        names = {c["name"] for c in counters}
        assert names == {"dram.row_conflicts", "cache.llc.misses"}


class TestCountersCsv:
    def test_columns_match_registered_counters(self):
        obs = recording_observer()
        rows = list(csv.reader(io.StringIO(counters_to_csv(obs))))
        assert rows[0] == ["ts_ns", *obs.counter_names]
        assert len(rows) == 1 + len(obs.samples)
        assert [float(x) for x in rows[1]] == [100.0, 200.0, 300.0]
        assert [float(x) for x in rows[2]] == [200.0, 400.0, 600.0]

    def test_no_counters_header_only(self):
        obs = Observer()
        obs.sample(5.0)
        rows = list(csv.reader(io.StringIO(counters_to_csv(obs))))
        assert rows[0] == ["ts_ns"]


class TestEdgeCases:
    """Empty traces, zero barriers, and numpy scalars must export cleanly."""

    def test_numpy_scalar_args_jsonl(self):
        # Kernel instants pass numpy scalars (e.g. an int16 page count)
        # straight from hot state; the exporter must coerce, not crash.
        obs = Observer()
        obs.instant("kernel.alloc.failed", 10.0, track="kernel",
                    args={"pages": np.int16(7), "node": np.int64(1),
                          "frac": np.float64(0.5), "huge": np.bool_(True)})
        parsed = json.loads(to_jsonl(obs).strip())
        assert parsed["args"] == {
            "pages": 7, "node": 1, "frac": 0.5, "huge": True,
        }

    def test_numpy_scalar_args_perfetto(self, tmp_path):
        obs = Observer()
        obs.span("dram.access", 0.0, np.float64(50.0), track="dram",
                 args={"bank": np.int32(3)})
        paths = export_run(obs, str(tmp_path), "np_args")
        doc = json.loads(open(paths["perfetto"]).read())
        span = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert span["args"] == {"bank": 3}

    def test_non_serializable_args_still_raise(self):
        obs = Observer()
        obs.instant("bad", 0.0, args={"obj": object()})
        try:
            to_jsonl(obs)
        except TypeError as err:
            assert "not JSON serializable" in str(err)
        else:
            raise AssertionError("expected TypeError for object() arg")

    def test_empty_trace_export_run(self, tmp_path):
        # A run that recorded nothing (e.g. --trace-out on a zero-event
        # program) must still write valid, empty artefacts.
        paths = export_run(Observer(), str(tmp_path / "empty"), "run0")
        assert open(paths["jsonl"]).read() == ""
        doc = json.loads(open(paths["perfetto"]).read())
        assert doc["traceEvents"] == []
        rows = list(csv.reader(open(paths["counters"])))
        assert rows == [["ts_ns"]]

    def test_counter_samples_only_trace_not_empty(self):
        # Regression: a trace holding ONLY counter samples (no spans,
        # no instants) must still export a non-empty Perfetto document
        # with the counters process and one "C" event per sample/counter.
        obs = Observer()
        obs.register_counter("service.queue_depth", lambda now: now / 10.0)
        obs.sample(10.0)
        obs.sample(20.0)
        doc = to_perfetto(obs)
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases == ["M", "C", "C"]
        meta = doc["traceEvents"][0]
        assert meta["args"]["name"] == "counters"
        values = [e["args"]["value"] for e in doc["traceEvents"][1:]]
        assert values == [1.0, 2.0]

    def test_samples_without_registered_counters_keep_track(self):
        # Sampling before any counter is registered used to export
        # {"traceEvents": []}; the counters track must be claimed
        # whenever samples exist, even if they carry no columns.
        obs = Observer()
        obs.sample(5.0)
        doc = to_perfetto(obs)
        assert doc["traceEvents"], "counter-samples-only trace came out empty"
        assert doc["traceEvents"][0]["ph"] == "M"
        assert doc["traceEvents"][0]["args"]["name"] == "counters"

    def test_zero_barrier_program_export(self, tmp_path):
        # Counters registered but never sampled (no barriers reached):
        # header-only CSV, no "C" events, metadata rows only.
        obs = Observer()
        obs.register_counter("dram.accesses", lambda now: 0)
        paths = export_run(obs, str(tmp_path), "zero_barriers")
        rows = list(csv.reader(open(paths["counters"])))
        assert rows == [["ts_ns", "dram.accesses"]]
        doc = json.loads(open(paths["perfetto"]).read())
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]
        assert open(paths["jsonl"]).read() == ""


class TestExportRun:
    def test_writes_all_three_artifacts(self, tmp_path):
        obs = recording_observer()
        paths = export_run(obs, str(tmp_path / "traces"), "run0")
        assert set(paths) == {"perfetto", "jsonl", "counters"}
        perfetto = json.loads(open(paths["perfetto"]).read())
        assert "traceEvents" in perfetto
        assert len(open(paths["jsonl"]).read().splitlines()) == 5
        header = open(paths["counters"]).readline().strip().split(",")
        assert header == ["ts_ns", *obs.counter_names]
