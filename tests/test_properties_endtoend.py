"""Property-based tests over the full kernel allocation path.

Random interleavings of color directives, mmaps, touches and unmaps from
several tasks must preserve the system's core invariants:

* a colored task's frames always match its color sets at fault time;
* no frame is ever owned twice;
* frame conservation: buddy + colored-free + allocated == total;
* the color matrix indexes stay consistent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.frame import FrameState
from repro.kernel.kernel import Kernel, OutOfColoredMemory, OutOfMemory
from repro.kernel.mmapi import COLOR_ALLOC, PROT_RW, set_llc_color, set_mem_color
from repro.machine.presets import tiny_machine
from repro.util.units import MIB

N_TASKS = 3


@st.composite
def kernel_script(draw):
    ops = []
    n = draw(st.integers(5, 60))
    for _ in range(n):
        op = draw(
            st.sampled_from(
                ["set_mem", "set_llc", "mmap", "touch", "munmap"]
            )
        )
        task = draw(st.integers(0, N_TASKS - 1))
        arg = draw(st.integers(0, 31))
        ops.append((op, task, arg))
    return ops


class TestKernelInvariants:
    @settings(max_examples=40, deadline=None)
    @given(kernel_script())
    def test_invariants_hold_under_random_scripts(self, script):
        machine = tiny_machine(memory_bytes=16 * MIB)
        kernel = Kernel(machine)
        proc = kernel.create_process()
        tasks = [
            kernel.create_task(proc, core=i % machine.topology.num_cores)
            for i in range(N_TASKS)
        ]
        vmas = []
        space = proc.address_space
        mapping = kernel.mapping

        for op, ti, arg in script:
            task = tasks[ti]
            if op == "set_mem":
                kernel.sys_mmap(
                    task,
                    set_mem_color(arg % mapping.num_bank_colors),
                    0, PROT_RW | COLOR_ALLOC,
                )
            elif op == "set_llc":
                kernel.sys_mmap(
                    task,
                    set_llc_color(arg % mapping.num_llc_colors),
                    0, PROT_RW | COLOR_ALLOC,
                )
            elif op == "mmap":
                vma = kernel.sys_mmap(task, 0, (1 + arg % 8) * 4096, PROT_RW)
                vmas.append(vma)
            elif op == "touch" and vmas:
                vma = vmas[arg % len(vmas)]
                offset = (arg * 4096) % vma.length
                try:
                    paddr, faulted = space.translate(vma.start + offset, task)
                except (OutOfColoredMemory, OutOfMemory):
                    continue
                if faulted:
                    pfn = paddr >> 12
                    # Colored faults match the toucher's colors.
                    if task.using_bank:
                        assert int(kernel.pool.bank_color[pfn]) in task.mem_colors
                    if task.using_llc:
                        assert int(kernel.pool.llc_color[pfn]) in task.llc_colors
                    assert kernel.pool.state[pfn] == FrameState.ALLOCATED
            elif op == "munmap" and vmas:
                vma = vmas.pop(arg % len(vmas))
                kernel.sys_munmap(tasks[0], vma)

            # Global invariants after every operation.
            counts = kernel.pool.counts()
            assert (
                counts["buddy"] + counts["colored_free"] + counts["allocated"]
                == kernel.pool.num_frames
            )
            assert counts["allocated"] == len(space.page_table)

        kernel.page_allocator.colors.check_invariants()
        for buddy in kernel.page_allocator.node_buddies:
            buddy.check_invariants()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_determinism_same_seed_same_layout(self, seed):
        """Two kernels given identical operation sequences produce
        identical physical layouts."""
        layouts = []
        for _ in range(2):
            kernel = Kernel(tiny_machine(memory_bytes=16 * MIB),
                            aged=True, age_seed=seed)
            proc = kernel.create_process()
            task = kernel.create_task(proc, core=0)
            vma = kernel.sys_mmap(task, 0, 32 * 4096, PROT_RW)
            pfns = [
                proc.address_space.translate(vma.start + i * 4096, task)[0] >> 12
                for i in range(32)
            ]
            layouts.append(pfns)
        assert layouts[0] == layouts[1]
