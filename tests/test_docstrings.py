"""Docstring coverage on the public API, enforced in tier 1.

``tools/check_docstrings.py`` is also the gate in front of the CI docs
job (pdoc renders whatever docstrings exist, so an empty page would
otherwise pass silently); running it here means a missing docstring
fails fast, locally, without pdoc installed.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_public_api_is_documented():
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_docstrings.py")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"undocumented public API:\n{proc.stdout}"
