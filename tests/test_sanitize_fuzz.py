"""Fuzz driver tests: determinism, shrinking, the CLI, and the loop."""

from __future__ import annotations

import dataclasses
import importlib.util
from pathlib import Path

import pytest

import repro.sanitize.fuzz as fuzz_mod
from repro.sanitize import SanitizeViolation
from repro.sanitize.fuzz import (
    FuzzCase,
    fuzz,
    repro_snippet,
    run_case,
    shrink_case,
)

TOOLS = Path(__file__).parent.parent / "tools"


def _load_cli():
    spec = importlib.util.spec_from_file_location(
        "fuzz_sim", TOOLS / "fuzz_sim.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestFuzzCase:
    def test_generation_is_seed_deterministic(self):
        assert FuzzCase.generate(5) == FuzzCase.generate(5)
        assert FuzzCase.generate(5) != FuzzCase.generate(6)

    def test_generated_fields_in_range(self):
        for seed in range(20):
            case = FuzzCase.generate(seed)
            assert case.memory_mib in (4, 8, 16)
            assert case.policy in fuzz_mod.FUZZ_POLICIES
            assert 1 <= case.nthreads <= 4
            assert 1 <= case.rounds <= 3
            assert case.region_kib in (4, 8, 16, 32)

    def test_run_case_clean(self):
        run_case(FuzzCase.generate(123), level="full", check_every=64)

    def test_run_case_reproducible(self):
        # Same case twice: both complete without violation (determinism
        # of the violation *path* is exercised via shrinking below).
        case = FuzzCase.generate(7)
        run_case(case)
        run_case(case)

    def test_generator_draws_every_preset_family(self):
        drawn = {FuzzCase.generate(seed).preset for seed in range(40)}
        assert drawn <= set(fuzz_mod.FUZZ_PRESETS)
        assert len(drawn) >= 2  # not stuck on one machine

    @pytest.mark.parametrize("preset", sorted(fuzz_mod.FUZZ_PRESETS))
    def test_run_case_clean_on_every_preset(self, preset):
        case = dataclasses.replace(
            FuzzCase(seed=31, nthreads=2, rounds=1,
                     accesses_per_thread=200), preset=preset,
        )
        run_case(case, level="full", check_every=32)

    def test_disagg_preset_exercises_the_remote_tier(self):
        machine = fuzz_mod.FUZZ_PRESETS["tiny_disagg"](8 * 1024 * 1024)
        assert machine.remote is not None
        assert machine.remote.remote_nodes == (1,)


class TestShrinking:
    def test_shrinks_towards_minimum(self):
        case = FuzzCase(seed=1, nthreads=4, rounds=3,
                        accesses_per_thread=1200, regions_per_thread=3,
                        region_kib=32, with_serial=True)
        # Pretend the violation needs >= 2 threads and >= 300 accesses.
        def reproduces(c):
            return c.nthreads >= 2 and c.accesses_per_thread >= 300

        shrunk = shrink_case(case, reproduces)
        assert reproduces(shrunk)
        assert shrunk.nthreads == 2
        assert shrunk.accesses_per_thread == 300
        assert shrunk.rounds == 1
        assert shrunk.regions_per_thread == 1
        assert shrunk.region_kib == 4
        assert not shrunk.with_serial

    def test_shrink_reduces_non_opteron_preset_to_tiny(self):
        # A violation that reproduces anywhere shrinks back to "tiny".
        case = FuzzCase(seed=3, preset="tiny_robacoch")
        shrunk = shrink_case(case, lambda c: True)
        assert shrunk.preset == "tiny"

    def test_shrink_keeps_preset_the_violation_needs(self):
        # A remote-tier-only violation must keep its disaggregated preset.
        case = FuzzCase(seed=3, nthreads=4, rounds=3, preset="tiny_disagg")
        shrunk = shrink_case(case, lambda c: c.preset == "tiny_disagg")
        assert shrunk.preset == "tiny_disagg"
        assert shrunk.rounds == 1 and shrunk.nthreads == 1

    def test_shrink_keeps_original_when_nothing_smaller_fails(self):
        case = FuzzCase(seed=1, nthreads=1, rounds=1, regions_per_thread=1,
                        region_kib=4, accesses_per_thread=50,
                        with_serial=False)
        shrunk = shrink_case(case, lambda c: True)
        assert shrunk == case

    def test_repro_snippet_replays_the_case(self):
        case = FuzzCase.generate(9)
        snippet = repro_snippet(case, "full", 64)
        assert "run_case" in snippet and repr(case) in snippet
        # The snippet must be directly runnable python.
        exec(compile(snippet, "<repro>", "exec"), {})


class TestFuzzLoop:
    def test_bounded_by_max_cases(self):
        result = fuzz(budget_s=600.0, seed=11, max_cases=3, check_every=64)
        assert result.cases_run == 3
        assert result.ok

    def test_progress_callback_sees_every_case(self):
        seen = []
        fuzz(budget_s=600.0, seed=2, max_cases=2,
             on_case=lambda i, c: seen.append((i, c.seed)))
        assert [i for i, _ in seen] == [0, 1]

    def test_violation_is_shrunk_and_reported(self, monkeypatch):
        # Stub the runner: any case with > 1 round or > 1 thread "fails".
        def fake_run_case(case, level="full", check_every=64):
            if case.rounds > 1 or case.nthreads > 1:
                raise SanitizeViolation("dram", "bank-busy-rewind", "injected")

        monkeypatch.setattr(fuzz_mod, "run_case", fake_run_case)
        result = fuzz_mod.fuzz(budget_s=600.0, seed=0, max_cases=50)
        assert not result.ok
        failure = result.failure
        assert failure.case.rounds > 1 or failure.case.nthreads > 1
        # Shrunk to the boundary of the failure condition.
        assert failure.shrunk.rounds <= 2 and failure.shrunk.nthreads <= 2
        assert "bank-busy-rewind" in failure.violation
        assert "run_case" in failure.snippet

    def test_out_of_memory_cases_are_skipped(self, monkeypatch):
        from repro.kernel.kernel import OutOfColoredMemory

        calls = {"n": 0}

        def fake_run_case(case, level="full", check_every=64):
            calls["n"] += 1
            raise OutOfColoredMemory("no frames of color (0, 0)")

        monkeypatch.setattr(fuzz_mod, "run_case", fake_run_case)
        result = fuzz_mod.fuzz(budget_s=600.0, seed=0, max_cases=4)
        assert result.ok and calls["n"] == 4


class TestCli:
    def test_parse_budget_forms(self):
        cli = _load_cli()
        assert cli.parse_budget("30") == 30.0
        assert cli.parse_budget("120s") == 120.0
        assert cli.parse_budget("2m") == 120.0
        with pytest.raises(Exception):
            cli.parse_budget("abc")
        with pytest.raises(Exception):
            cli.parse_budget("-5")

    def test_main_runs_and_exits_zero(self, capsys):
        cli = _load_cli()
        rc = cli.main(["--budget", "60s", "--max-cases", "2", "--seed", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ran 2 cases" in out
        assert "no invariant violations" in out

    def test_main_reports_failure_with_repro(self, capsys, monkeypatch):
        cli = _load_cli()

        def fake_fuzz(**kwargs):
            case = FuzzCase(seed=1)
            return fuzz_mod.FuzzResult(
                cases_run=1, elapsed_s=0.1,
                failure=fuzz_mod.FuzzFailure(
                    case=case, shrunk=dataclasses.replace(case, rounds=1),
                    violation="[dram] bank-busy-rewind: injected",
                    snippet=repro_snippet(case, "full", 64),
                ),
            )

        monkeypatch.setattr(cli, "fuzz", fake_fuzz)
        rc = cli.main(["--budget", "1s"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "INVARIANT VIOLATION" in out
        assert "run_case" in out
