"""Hypothesis tests over *randomly generated* address mappings.

The codec must be internally consistent for any valid platform
description, not just the shipped presets: decode/compose round-trips,
frame color tables match scalar decoding, color compatibility agrees with
the physically existing frames, and capacity arithmetic is exact.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.address import AddressMapping


@st.composite
def mappings(draw):
    """A random valid AddressMapping with frame-invariant colors."""
    total_bits = draw(st.integers(24, 30))
    page_bits = 12
    # Candidate positions for field bits: within [page_bits, total_bits).
    available = list(range(page_bits, total_bits))
    rng = draw(st.randoms(use_true_random=False))
    rng.shuffle(available)
    node_w = draw(st.integers(1, 2))
    ch_w = draw(st.integers(0, 1)) or 1
    rank_w = 1
    bank_w = draw(st.integers(1, 3))
    need = node_w + ch_w + rank_w + bank_w
    if need > len(available):
        bank_w = 1
        need = node_w + ch_w + rank_w + bank_w
    positions = available[:need]
    fields = {
        "node": tuple(sorted(positions[:node_w])),
        "channel": tuple(sorted(positions[node_w:node_w + ch_w])),
        "rank": tuple(sorted(positions[node_w + ch_w:node_w + ch_w + rank_w])),
        "bank": tuple(sorted(positions[node_w + ch_w + rank_w:need])),
    }
    # LLC colors: 2-4 bits anywhere in [page_bits, total_bits) — may
    # overlap field bits (that's the interesting case).
    llc_w = draw(st.integers(2, 4))
    llc_lo = draw(st.integers(page_bits, total_bits - llc_w))
    return AddressMapping(
        total_bits=total_bits,
        line_bits=6,
        page_bits=page_bits,
        fields=fields,
        llc_color_positions=tuple(range(llc_lo, llc_lo + llc_w)),
        row_bits_start=page_bits,
    )


class TestRandomMappings:
    @settings(max_examples=50, deadline=None)
    @given(mappings(), st.data())
    def test_compose_decode_roundtrip(self, m, data):
        node = data.draw(st.integers(0, m.num_nodes - 1))
        ch = data.draw(st.integers(0, m.num_channels - 1))
        rank = data.draw(st.integers(0, m.num_ranks - 1))
        bank = data.draw(st.integers(0, m.num_banks - 1))
        free_bits = m.total_bits - sum(len(p) for p in m.fields.values())
        rest = data.draw(st.integers(0, (1 << free_bits) - 1))
        paddr = m.compose(node, ch, rank, bank, rest)
        loc = m.decode(paddr)
        assert (loc.node, loc.channel, loc.rank, loc.bank) == (
            node, ch, rank, bank
        )

    @settings(max_examples=30, deadline=None)
    @given(mappings())
    def test_bank_color_bijective_over_coordinates(self, m):
        seen = set()
        for node in range(m.num_nodes):
            for ch in range(m.num_channels):
                for rank in range(m.num_ranks):
                    for bank in range(m.num_banks):
                        c = m.compose_bank_color(node, ch, rank, bank)
                        assert m.split_bank_color(c) == (node, ch, rank, bank)
                        seen.add(c)
        assert seen == set(range(m.num_bank_colors))

    @settings(max_examples=20, deadline=None)
    @given(mappings())
    def test_frame_table_matches_scalar(self, m):
        bank, llc = m.frame_color_table()
        pfns = np.random.default_rng(0).integers(
            0, m.num_frames, size=64
        )
        for pfn in pfns.tolist():
            assert bank[pfn] == m.frame_bank_color(pfn)
            assert llc[pfn] == m.frame_llc_color(pfn)

    @settings(max_examples=20, deadline=None)
    @given(mappings())
    def test_compatibility_matches_physical_frames(self, m):
        """colors_compatible(bc, lc) must be True exactly when a frame
        with that color pair exists."""
        bank, llc = m.frame_color_table()
        existing = set(zip(bank.tolist(), llc.tolist()))
        for bc in range(m.num_bank_colors):
            for lc in range(m.num_llc_colors):
                assert m.colors_compatible(bc, lc) == (
                    (bc, lc) in existing
                )

    @settings(max_examples=20, deadline=None)
    @given(mappings())
    def test_frames_per_combo_exact(self, m):
        bank, llc = m.frame_color_table()
        from collections import Counter

        counts = Counter(zip(bank.tolist(), llc.tolist()))
        assert set(counts.values()) == {m.frames_per_combo()}

    @settings(max_examples=20, deadline=None)
    @given(mappings())
    def test_node_ranges_partition_colors(self, m):
        all_colors = []
        for node in range(m.num_nodes):
            all_colors.extend(m.bank_colors_of_node(node))
        assert sorted(all_colors) == list(range(m.num_bank_colors))
