"""Search driver contracts: determinism, caching, fault survival.

The headline property (the issue's acceptance bar): a same-seed,
same-budget rerun of a search produces a byte-identical log document
and Pareto front, and — against the store the first run populated —
serves (almost) everything from cache.  Plus: the front always contains
a policy that dominates or matches the paper's ``mem+llc`` baseline,
because the seed population embeds the paper's policies and the
structured-policy encoding is bit-identical to the named one.
"""

from __future__ import annotations

import json

import pytest

from repro.faultline import FaultPlan, FaultRule, armed
from repro.search.drivers import (
    EvolutionDriver,
    GridDriver,
    SearchSettings,
    ServiceEvaluator,
)
from repro.search.pareto import FrontPoint, ParetoFront, dominates
from repro.search.report import (
    render_report,
    replay_front,
    search_log_json,
    verdict_vs_baseline,
)
from repro.search.space import SearchSpace
from repro.service.client import ServiceClient

SETTINGS = SearchSettings(
    bench="lbm", config="4_threads_4_nodes", profile="mini",
    seed=11, budget=10, full_reps=2, screen_reps=1, population=6,
)


@pytest.fixture(scope="module")
def space() -> SearchSpace:
    return SearchSpace(SETTINGS.config, SETTINGS.profile)


def run_search(driver_cls, store, settings=SETTINGS, space_=None):
    with ServiceClient(store=store, executor="inline") as client:
        evaluator = ServiceEvaluator(client, settings)
        outcome = driver_cls(
            space_ or SearchSpace(settings.config, settings.profile),
            evaluator, settings,
        ).run()
    return outcome, evaluator


class TestParetoFront:
    def test_dominates_is_strict_somewhere(self):
        assert dominates((1.0, 2.0), (2.0, 2.0))
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert not dominates((1.0, 2.0), (1.0, 2.0))  # equal: no
        assert not dominates((1.0, 3.0), (2.0, 2.0))  # trade-off: no

    def test_offer_evicts_dominated_and_keeps_ties(self):
        front = ParetoFront()
        a = FrontPoint(10.0, 5.0, "a", "a")
        b = FrontPoint(8.0, 6.0, "b", "b")  # trade-off with a
        c = FrontPoint(7.0, 4.0, "c", "c")  # dominates both
        tie = FrontPoint(7.0, 4.0, "d", "d")  # equal to c: kept
        assert front.offer(a) and front.offer(b)
        assert front.offer(c)
        assert [p.digest for p in front.points()] == ["c"]
        assert front.offer(tie)
        assert len(front) == 2
        assert not front.offer(FrontPoint(9.0, 9.0, "e", "e"))
        assert "e" not in front

    def test_reoffer_is_idempotent(self):
        front = ParetoFront()
        p = FrontPoint(1.0, 1.0, "p", "p")
        assert front.offer(p) and front.offer(p)
        assert len(front) == 1


class TestSearchDeterminismAndCaching:
    def test_same_seed_rerun_is_identical_and_cache_served(self, tmp_path):
        store = str(tmp_path / "search.sqlite")
        out1, ev1 = run_search(EvolutionDriver, store)
        doc1 = search_log_json(out1)
        assert ev1.jobs_executed > 0  # cold cache actually simulated

        out2, ev2 = run_search(EvolutionDriver, store)
        doc2 = search_log_json(out2)
        assert json.dumps(doc1, sort_keys=True) == json.dumps(
            doc2, sort_keys=True
        )
        assert out1.front.to_json() == out2.front.to_json()
        total = ev2.jobs_executed + ev2.jobs_cached
        assert total > 0
        assert ev2.jobs_cached / total >= 0.95, (
            f"rerun executed {ev2.jobs_executed} of {total} jobs"
        )

    def test_log_is_json_native_and_free_of_wall_clock(self, tmp_path):
        out, _ = run_search(GridDriver, str(tmp_path / "g.sqlite"))
        doc = search_log_json(out)
        text = json.dumps(doc)  # must not raise (no inf/nan/objects)
        for banned in ("time", "date", "cache_hits", "wall"):
            for entry in doc["log"]:
                assert banned not in entry
        assert "Infinity" not in text

    def test_replay_front_from_cache_alone(self, tmp_path):
        store = str(tmp_path / "replay.sqlite")
        out, _ = run_search(EvolutionDriver, store)
        doc = json.loads(json.dumps(search_log_json(out)))
        with ServiceClient(store=store, executor="inline") as client:
            evaluator = ServiceEvaluator(client, SETTINGS)
            front = replay_front(doc, evaluator)
            assert evaluator.jobs_executed == 0
        assert front.to_json() == out.front.to_json()


class TestAcceptanceFloor:
    def test_front_matches_or_dominates_paper_mem_llc(self, tmp_path):
        out, _ = run_search(GridDriver, str(tmp_path / "a.sqlite"))
        assert len(out.front) >= 1
        verdict, witness = verdict_vs_baseline(
            out, out.baselines["mem+llc"]
        )
        assert verdict in ("dominates", "matches"), verdict
        assert witness is not None
        report = render_report(out)
        assert "mem+llc" in report and verdict in report

    def test_budget_is_respected(self, tmp_path):
        settings = SearchSettings(
            bench="lbm", config="4_threads_4_nodes", profile="mini",
            seed=3, budget=5, full_reps=2, screen_reps=1, population=6,
        )
        out, _ = run_search(
            EvolutionDriver, str(tmp_path / "b.sqlite"), settings
        )
        assert 0 < out.evaluations <= settings.budget
        fulls = [e for e in out.log
                 if e.get("event") == "eval" and e["phase"] == "full"]
        assert fulls, "budget must leave room for full evaluations"


class TestFaultSurvival:
    def test_search_survives_worker_kills(self, tmp_path):
        # Recoverable kills: fires <= the scheduler's default retry
        # budget, so killed attempts crash, retry, and succeed.  The
        # driver must neither raise nor lose its front.
        plan = FaultPlan(seed=7, rules=(
            FaultRule(site="worker.kill", probability=0.5, max_fires=2),
        ))
        with armed(plan) as injector:
            out, _ = run_search(GridDriver, str(tmp_path / "f.sqlite"))
            assert injector.fire_count("worker.kill") >= 1
        assert len(out.front) >= 1
        verdict, _ = verdict_vs_baseline(out, out.baselines["mem+llc"])
        assert verdict in ("dominates", "matches")

    def test_unrecoverable_kills_become_error_outcomes(self, tmp_path):
        # Unlimited deterministic kills perma-fail the targeted scopes;
        # the search records error outcomes and keeps going instead of
        # propagating JobFailed.
        plan = FaultPlan(seed=7, rules=(
            FaultRule(site="worker.kill", probability=0.4),
        ))
        with armed(plan):
            out, _ = run_search(GridDriver, str(tmp_path / "u.sqlite"))
        outcomes = {e["outcome"] for e in out.log if e["event"] == "eval"}
        assert "error" in outcomes
        assert out.evaluations > 0
