"""Result stores: round trips, persistence, schema versioning."""

from __future__ import annotations

import json

import pytest

from repro.service import JsonlStore, MemoryStore, SqliteStore, open_store
from repro.service.store import ResultStore
from repro.sim.metrics import SCHEMA_VERSION

SPEC = {"bench": "lbm", "policy": "mem+llc"}
RECORD = {"schema_version": SCHEMA_VERSION, "bench": "lbm", "runtime": 1.5}


def _backends(tmp_path):
    return [
        MemoryStore(),
        JsonlStore(str(tmp_path / "results.jsonl")),
        SqliteStore(str(tmp_path / "results.sqlite")),
    ]


class TestCommonBehavior:
    def test_put_get_roundtrip_all_backends(self, tmp_path):
        for store in _backends(tmp_path):
            assert store.get("d1") is None
            store.put("d1", SPEC, RECORD)
            assert store.get("d1") == RECORD
            assert "d1" in store
            assert len(store) == 1
            stats = store.stats()
            assert stats == {
                "entries": 1, "hits": 1, "misses": 1, "puts": 1, "corrupt": 0,
            }
            store.close()

    def test_last_write_wins(self, tmp_path):
        for store in _backends(tmp_path):
            store.put("d1", SPEC, RECORD)
            newer = {**RECORD, "runtime": 9.0}
            store.put("d1", SPEC, newer)
            assert store.get("d1") == newer
            assert len(store) == 1
            store.close()


class TestPersistence:
    def test_jsonl_survives_reopen(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        store = JsonlStore(path)
        store.put("d1", SPEC, RECORD)
        store.close()
        reopened = JsonlStore(path)
        assert reopened.get("d1") == RECORD
        reopened.close()

    def test_jsonl_ignores_torn_tail_line(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        store = JsonlStore(path)
        store.put("d1", SPEC, RECORD)
        store.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"digest": "d2", "truncated...')
        reopened = JsonlStore(path)
        assert reopened.get("d1") == RECORD
        assert reopened.get("d2") is None
        reopened.close()

    def test_sqlite_survives_reopen(self, tmp_path):
        path = str(tmp_path / "results.sqlite")
        store = SqliteStore(path)
        store.put("d1", SPEC, RECORD)
        store.close()
        reopened = SqliteStore(path)
        assert reopened.get("d1") == RECORD
        reopened.close()


class TestSchemaVersioning:
    def test_version_mismatch_is_a_miss(self, tmp_path):
        """An entry written by a different schema version is never
        deserialized — it reads as a miss and the job re-runs."""
        path = str(tmp_path / "results.jsonl")
        store = JsonlStore(path)
        store.put("d1", SPEC, RECORD)
        store.close()
        # Simulate a stale entry from an older build.
        entry = {
            "digest": "old", "schema_version": SCHEMA_VERSION - 1,
            "spec": SPEC, "record": {"bench": "stale"}, "created_at": 0.0,
        }
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry) + "\n")
        reopened = JsonlStore(path)
        assert reopened.get("old") is None
        assert reopened.get("d1") == RECORD
        assert reopened.stats()["misses"] == 1
        reopened.close()


class TestOpenStore:
    def test_open_store_dispatch(self, tmp_path):
        assert isinstance(open_store(None), MemoryStore)
        assert isinstance(open_store(":memory:"), MemoryStore)
        assert isinstance(open_store(str(tmp_path / "a.jsonl")), JsonlStore)
        assert isinstance(open_store(str(tmp_path / "a.sqlite")), SqliteStore)
        assert isinstance(open_store(str(tmp_path / "a.db")), SqliteStore)

    def test_open_store_passthrough(self):
        store = MemoryStore()
        assert open_store(store) is store

    def test_base_store_is_memory_only(self):
        with pytest.raises(TypeError):
            ResultStore("no-positional-args")
