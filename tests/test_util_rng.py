"""Unit tests for seeded RNG streams."""

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_name_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_master_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_path_flattening_is_not_ambiguous(self):
        # ("ab",) vs ("a", "b") must differ.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")


class TestRngStream:
    def test_same_path_same_draws(self):
        a = RngStream(42, "x").integers(0, 1000, size=10)
        b = RngStream(42, "x").integers(0, 1000, size=10)
        assert (a == b).all()

    def test_different_paths_diverge(self):
        a = RngStream(42, "x").integers(0, 1000, size=10)
        b = RngStream(42, "y").integers(0, 1000, size=10)
        assert (a != b).any()

    def test_child_independent_of_consumption(self):
        s1 = RngStream(42, "root")
        s1.integers(0, 100, size=5)  # consume some state
        c1 = s1.child("leaf").integers(0, 1000, size=5)
        s2 = RngStream(42, "root")
        c2 = s2.child("leaf").integers(0, 1000, size=5)
        assert (c1 == c2).all()

    def test_children_distinct(self):
        s = RngStream(0)
        a = s.child("a").random(5)
        b = s.child("b").random(5)
        assert (a != b).any()
