"""sweep()-through-service integration: caching, fast path, identity.

Covers the acceptance criteria end to end on the real simulator (mini
profile): a sweep submitted twice through the service gets >= 95% cache
hits on the second pass with bit-identical records, the serial fast
path never forks a worker process, and serial/pooled paths agree.
"""

from __future__ import annotations

import pytest

from repro.alloc.policies import Policy
from repro.experiments.runner import sweep
from repro.service import JobSpec, MemoryStore, ServiceClient
from repro.service.scheduler import Scheduler

BENCHES = ["lbm", "blackscholes"]
POLICIES = [Policy.BUDDY, Policy.MEM_LLC]
CONFIGS = ["4_threads_4_nodes"]
KWARGS = dict(benches=BENCHES, policies=POLICIES, configs=CONFIGS,
              reps=2, profile="mini", seed=3)


class TestSerialFastPath:
    def test_single_worker_never_forks(self, monkeypatch):
        """Satellite regression: workers == 1 (or a single job) must run
        inline — no worker process is ever spawned."""

        def forbidden(self, job):
            raise AssertionError("serial sweep spawned a worker process")

        monkeypatch.setattr(Scheduler, "_execute_in_process", forbidden)
        records = sweep(parallel=True, max_workers=1, **KWARGS)
        assert len(records) == 8
        # parallel=False and single-job sweeps take the same inline path.
        assert sweep(parallel=False, **KWARGS) == records
        single = sweep(benches=["lbm"], policies=[Policy.BUDDY],
                       configs=CONFIGS, reps=1, profile="mini", seed=3)
        assert len(single) == 1

    def test_serial_matches_pooled_bit_identically(self):
        serial = sweep(parallel=True, max_workers=1, **KWARGS)
        pooled = sweep(parallel=True, max_workers=4, **KWARGS)
        assert serial == pooled


class TestSweepCaching:
    def test_second_pass_hits_cache_with_identical_records(self):
        store = MemoryStore()
        first = sweep(parallel=True, max_workers=2, cache=store, **KWARGS)
        assert store.stats()["puts"] == len(first) == 8
        second = sweep(parallel=True, max_workers=2, cache=store, **KWARGS)
        # Acceptance: >= 95% hits on the second pass, records identical.
        assert store.stats()["hits"] >= int(0.95 * len(first))
        assert second == first
        assert store.stats()["puts"] == 8  # nothing re-ran, nothing re-stored

    def test_cache_shared_across_serial_and_pooled_paths(self):
        store = MemoryStore()
        serial = sweep(parallel=False, cache=store, **KWARGS)
        pooled = sweep(parallel=True, max_workers=4, cache=store, **KWARGS)
        assert pooled == serial
        assert store.stats()["puts"] == 8

    def test_jsonl_cache_survives_into_a_new_sweep(self, tmp_path):
        path = str(tmp_path / "sweep_cache.jsonl")
        first = sweep(parallel=False, cache=path, **KWARGS)
        second = sweep(parallel=False, cache=path, **KWARGS)
        assert second == first


class TestServiceSweepTwicePattern:
    def test_demo_pattern_full_hit_rate(self):
        """The `python -m repro.service demo` contract, in-process."""
        specs = [
            JobSpec(bench=b, policy=p.value, config=CONFIGS[0], rep=r,
                    profile="mini", seed=3)
            for b in BENCHES for p in POLICIES for r in range(2)
        ]
        with ServiceClient(store=":memory:", shards=2,
                           executor="process") as client:
            first = client.run(specs)
            stats1 = client.stats()
            second = client.run(specs)
            stats2 = client.stats()
        hits = stats2["cache_hits"] - stats1["cache_hits"]
        assert hits / len(specs) >= 0.95
        assert second == first


class TestSanitizeThroughService:
    def test_sanitized_run_matches_unsanitized(self):
        """sanitize="cheap" rides the JobSpec into the worker and must
        not perturb the simulation (traced path equivalence)."""
        base = dict(benches=["lbm"], policies=[Policy.MEM_LLC],
                    configs=CONFIGS, reps=1, profile="mini", seed=3,
                    parallel=False)
        plain = sweep(sanitize="off", **base)
        sanitized = sweep(sanitize="cheap", **base)
        for a, b in zip(plain, sanitized):
            assert a == b

    def test_sanitize_levels_have_distinct_digests(self):
        """Cached sanitized and unsanitized runs never alias."""
        off = JobSpec(bench="lbm", profile="mini", sanitize="off")
        full = JobSpec(bench="lbm", profile="mini", sanitize="full")
        assert off.digest() != full.digest()


class TestSweepFaultTolerance:
    def test_sweep_result_order_matches_job_order(self):
        records = sweep(parallel=True, max_workers=4, **KWARGS)
        expected = [
            (b, p.label, c, r)
            for b in BENCHES for c in CONFIGS for p in POLICIES
            for r in range(2)
        ]
        got = [(r.bench, r.policy, r.config, r.rep) for r in records]
        assert got == expected

    def test_unknown_bench_fails_cleanly(self):
        from repro.service import JobFailed

        with pytest.raises(JobFailed):
            sweep(benches=["no-such-bench"], policies=[Policy.BUDDY],
                  configs=CONFIGS, reps=1, profile="mini", parallel=False)
