"""Property suite for the mapping-scheme layer and the platform family.

For every scheme x preset: decode∘compose round-trips, DRAM field bits
are mutually disjoint, scalar ``frame_decode`` agrees element-wise with
the vectorised ``decode_batch``, and the bank-color space is exactly the
node x channel x rank x bank product.  Scheme-built mappings additionally
pin the structural contract the kernel relies on (node field on top, LLC
colors contiguous at the page offset), and the ``OpteronFig5`` scheme
must reproduce the paper's literal Fig. 5 bit placement.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.address import (
    SCHEMES,
    AddressMapping,
    build_mapping,
    contiguous,
)
from repro.machine.pci import encode_config_space, probe_address_mapping
from repro.machine.presets import PLATFORMS
from repro.util.units import MIB

#: preset name -> mapping (module scope: built once for the whole suite).
PRESET_MAPPINGS = {
    name: factory(256 * MIB).mapping for name, factory in PLATFORMS.items()
}


@st.composite
def scheme_mappings(draw):
    """A random (scheme, geometry) pair that builds successfully."""
    name = draw(st.sampled_from(sorted(SCHEMES)))
    if name == "OpteronFig5":
        # The split bank field is the part's literal layout: 3 bank bits.
        bank_bits = 3
        channel_bits = draw(st.integers(1, 2))
        rank_bits = draw(st.integers(1, 2))
    else:
        bank_bits = draw(st.integers(1, 4))
        channel_bits = draw(st.integers(1, 3))
        rank_bits = draw(st.integers(1, 2))
    node_bits = draw(st.integers(1, 3))
    llc_bits = draw(st.integers(2, 5))
    # Enough room for the widest layout (up to 4 column-gap bits in
    # OpteronFig5) + the top-of-memory node field.
    floor = 12 + 4 + channel_bits + rank_bits + bank_bits + node_bits
    total_bits = draw(st.integers(floor, floor + 4))
    return build_mapping(
        name,
        total_bits=total_bits,
        node_bits=node_bits,
        channel_bits=channel_bits,
        rank_bits=rank_bits,
        bank_bits=bank_bits,
        llc_color_bits=llc_bits,
        line_bits=6,
    )


def _any_mapping_ids():
    return sorted(PRESET_MAPPINGS)


@pytest.mark.parametrize("preset", _any_mapping_ids())
class TestPresetMappings:
    def test_field_bits_disjoint(self, preset):
        m = PRESET_MAPPINGS[preset]
        all_bits = [p for ps in m.fields.values() for p in ps]
        assert len(all_bits) == len(set(all_bits)), (
            f"{preset}: DRAM field bits overlap"
        )

    def test_bank_color_space_is_field_product(self, preset):
        m = PRESET_MAPPINGS[preset]
        assert m.num_bank_colors == (
            m.num_nodes * m.num_channels * m.num_ranks * m.num_banks
        )
        bank, _ = m.frame_color_table()
        counts = np.bincount(bank, minlength=m.num_bank_colors)
        assert (counts == m.num_frames // m.num_bank_colors).all(), (
            f"{preset}: frames not evenly striped over bank colors"
        )

    def test_compose_decode_roundtrip(self, preset):
        m = PRESET_MAPPINGS[preset]
        rng = np.random.default_rng(7)
        for _ in range(64):
            node = int(rng.integers(m.num_nodes))
            ch = int(rng.integers(m.num_channels))
            rank = int(rng.integers(m.num_ranks))
            bank = int(rng.integers(m.num_banks))
            free_bits = m.total_bits - sum(
                len(ps) for ps in m.fields.values()
            )
            rest = int(rng.integers(1 << min(free_bits, 62)))
            paddr = m.compose(node, ch, rank, bank, rest)
            loc = m.decode(paddr)
            assert (loc.node, loc.channel, loc.rank, loc.bank) == (
                node, ch, rank, bank
            )

    def test_frame_decode_matches_decode_batch(self, preset):
        m = PRESET_MAPPINGS[preset]
        rng = np.random.default_rng(13)
        pfns = rng.integers(m.num_frames, size=256, dtype=np.int64)
        batch = m.decode_batch(pfns)
        for i, pfn in enumerate(pfns.tolist()):
            d = m.frame_decode(pfn)
            assert d.node == batch.node[i]
            assert d.channel == batch.channel[i]
            assert d.rank == batch.rank[i]
            assert d.bank == batch.bank[i]
            assert d.bank_color == batch.bank_color[i]
            assert d.llc_color == batch.llc_color[i]

    def test_pci_probe_roundtrip(self, preset):
        """Every family mapping must survive the BIOS encode / boot probe."""
        m = PRESET_MAPPINGS[preset]
        assert probe_address_mapping(encode_config_space(m)) == m

    def test_frame_colors_invariant(self, preset):
        assert PRESET_MAPPINGS[preset].frame_colors_invariant()


class TestSchemeBuilder:
    @settings(max_examples=60, deadline=None)
    @given(scheme_mappings())
    def test_built_mapping_is_valid(self, m):
        # structural contract: node on top, llc contiguous at page offset
        node = m.fields["node"]
        assert node == tuple(
            range(m.total_bits - len(node), m.total_bits)
        )
        assert m.llc_color_positions == contiguous(
            m.page_bits, len(m.llc_color_positions)
        )
        assert m.frame_colors_invariant()
        all_bits = [p for ps in m.fields.values() for p in ps]
        assert len(all_bits) == len(set(all_bits))
        assert m.num_bank_colors == (
            m.num_nodes * m.num_channels * m.num_ranks * m.num_banks
        )

    @settings(max_examples=30, deadline=None)
    @given(scheme_mappings(), st.data())
    def test_built_mapping_roundtrip_and_batch(self, m, data):
        node = data.draw(st.integers(0, m.num_nodes - 1))
        ch = data.draw(st.integers(0, m.num_channels - 1))
        rank = data.draw(st.integers(0, m.num_ranks - 1))
        bank = data.draw(st.integers(0, m.num_banks - 1))
        paddr = m.compose(node, ch, rank, bank, 0)
        loc = m.decode(paddr)
        assert (loc.node, loc.channel, loc.rank, loc.bank) == (
            node, ch, rank, bank
        )
        pfns = np.asarray(
            data.draw(st.lists(
                st.integers(0, m.num_frames - 1), min_size=1, max_size=64
            )),
            dtype=np.int64,
        )
        batch = m.decode_batch(pfns)
        for i, pfn in enumerate(pfns.tolist()):
            d = m.frame_decode(pfn)
            assert (d.node, d.channel, d.rank, d.bank) == (
                int(batch.node[i]), int(batch.channel[i]),
                int(batch.rank[i]), int(batch.bank[i]),
            )
            assert d.bank_color == int(batch.bank_color[i])
            assert d.llc_color == int(batch.llc_color[i])

    def test_opteron_fig5_scheme_reproduces_paper_layout(self):
        m = build_mapping(
            "OpteronFig5", total_bits=33, node_bits=2, channel_bits=1,
            rank_bits=1, bank_bits=3, llc_color_bits=5, line_bits=7,
        )
        assert m == AddressMapping(
            total_bits=33, line_bits=7, page_bits=12,
            fields={
                "node": contiguous(31, 2),
                "channel": contiguous(19, 1),
                "rank": contiguous(20, 1),
                "bank": (15, 16, 18),
            },
            llc_color_positions=contiguous(12, 5),
            row_bits_start=12,
        )

    def test_scheme_names_cover_the_gem5_layouts(self):
        for name in ("RoCoRaBaCh", "RoRaBaCoCh", "RoRaBaChCo", "OpteronFig5"):
            assert name in SCHEMES

    def test_unknown_scheme_raises(self):
        with pytest.raises(ValueError, match="unknown mapping scheme"):
            build_mapping(
                "NoSuchScheme", total_bits=28, node_bits=1, channel_bits=1,
                rank_bits=1, bank_bits=1, llc_color_bits=2, line_bits=6,
            )

    def test_unconsumed_bank_bits_raise(self):
        # OpteronFig5's layout places exactly 3 bank bits.
        with pytest.raises(ValueError, match="not placed by layout"):
            build_mapping(
                "OpteronFig5", total_bits=33, node_bits=2, channel_bits=1,
                rank_bits=1, bank_bits=4, llc_color_bits=5, line_bits=7,
            )

    def test_field_overflow_into_node_raises(self):
        with pytest.raises(ValueError, match="node field"):
            build_mapping(
                "RoCoRaBaCh", total_bits=20, node_bits=1, channel_bits=3,
                rank_bits=2, bank_bits=4, llc_color_bits=2, line_bits=6,
            )
