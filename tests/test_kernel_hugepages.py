"""Huge pages bypass coloring (paper §III-C) — kernel-level tests."""

import pytest

from repro.kernel.frame import FrameState
from repro.kernel.kernel import Kernel
from repro.kernel.mmapi import PROT_RW
from repro.machine.presets import tiny_machine
from repro.util.units import MIB


@pytest.fixture
def env():
    kernel = Kernel(tiny_machine())
    proc = kernel.create_process()
    task = kernel.create_task(proc, core=0)
    return kernel, proc, task


class TestHugeMappings:
    def test_huge_mapping_populates_block(self, env):
        kernel, proc, task = env
        vma = kernel.sys_mmap(task, 0, 2 * MIB, PROT_RW, huge=True)
        paddr, faulted = proc.address_space.translate(vma.start, task)
        assert faulted
        assert proc.address_space.resident_pages == 512
        # The block is naturally aligned and physically contiguous.
        assert (paddr >> 12) % 512 == 0

    def test_huge_pages_never_colored(self, env):
        """A fully colored task still gets plain buddy frames for huge
        mappings — Algorithm 1 colors order-0 only."""
        kernel, proc, task = env
        task.add_mem_color(5)
        task.add_llc_color(1)
        vma = kernel.sys_mmap(task, 0, 2 * MIB, PROT_RW, huge=True)
        proc.address_space.translate(vma.start, task)
        colors = {
            int(kernel.pool.bank_color[pfn])
            for _, pfn in proc.address_space.populated_pages()
        }
        assert colors != {5}  # contiguous block spans many bank colors
        assert task.colored_allocations == 0

    def test_huge_stays_local(self, env):
        kernel, proc, task = env
        vma = kernel.sys_mmap(task, 0, 2 * MIB, PROT_RW, huge=True)
        proc.address_space.translate(vma.start, task)
        nodes = {
            kernel.pool.node_of_frame(pfn)
            for _, pfn in proc.address_space.populated_pages()
        }
        assert nodes == {0}  # first-touch locality still applies

    def test_munmap_releases_block(self, env):
        kernel, proc, task = env
        vma = kernel.sys_mmap(task, 0, 2 * MIB, PROT_RW, huge=True)
        proc.address_space.translate(vma.start, task)
        assert kernel.pool.counts()["allocated"] == 512
        kernel.sys_munmap(task, vma)
        assert kernel.pool.counts()["allocated"] == 0
        for buddy in kernel.page_allocator.node_buddies:
            buddy.check_invariants()

    def test_heap_malloc_huge(self, env):
        kernel, proc, task = env
        from repro.alloc.heap import HeapAllocator

        heap = HeapAllocator(kernel, next(iter(kernel.processes.values())))
        va = heap.malloc(task, 100, huge=True)  # even tiny requests
        info = heap.allocation_at(va)
        assert info.vma is not None and info.vma.page_order == 9
        paddr, _ = proc.address_space.translate(va, task)
        assert kernel.pool.state[paddr >> 12] == FrameState.ALLOCATED
