"""Unit + property tests for the physical address codec (Eq. 1, LLC color)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.address import AddressMapping, contiguous
from repro.machine.presets import opteron_6128, tiny_machine


@pytest.fixture
def mapping():
    return opteron_6128().mapping


class TestGeometry:
    def test_color_counts(self, mapping):
        assert mapping.num_bank_colors == 128  # paper: 2^7 banks
        assert mapping.num_llc_colors == 32  # paper: 2^5 colors
        assert mapping.num_nodes == 4
        assert mapping.bank_colors_per_node == 32

    def test_sizes(self, mapping):
        assert mapping.page_bytes == 4096
        assert mapping.line_bytes == 128
        assert mapping.num_frames * mapping.page_bytes == mapping.memory_bytes

    def test_field_validation_overlap(self):
        with pytest.raises(ValueError):
            AddressMapping(
                total_bits=30, line_bits=6, page_bits=12,
                fields={
                    "node": (20,), "channel": (20,),  # overlapping bit
                    "rank": (21,), "bank": (22,),
                },
                llc_color_positions=(12, 13),
            )

    def test_field_names_enforced(self):
        with pytest.raises(ValueError):
            AddressMapping(
                total_bits=30, line_bits=6, page_bits=12,
                fields={"node": (20,), "bank": (22,)},
                llc_color_positions=(12,),
            )


class TestBankColor:
    def test_eq1_mixed_radix(self, mapping):
        # bc = ((node*NC + ch)*NR + rank)*NB + bank
        assert mapping.compose_bank_color(0, 0, 0, 0) == 0
        assert mapping.compose_bank_color(0, 0, 0, 7) == 7
        assert mapping.compose_bank_color(0, 0, 1, 0) == 8
        assert mapping.compose_bank_color(0, 1, 0, 0) == 16
        assert mapping.compose_bank_color(1, 0, 0, 0) == 32
        assert mapping.compose_bank_color(3, 1, 1, 7) == 127

    def test_split_roundtrip(self, mapping):
        for color in range(mapping.num_bank_colors):
            parts = mapping.split_bank_color(color)
            assert mapping.compose_bank_color(*parts) == color

    def test_node_ranges(self, mapping):
        assert list(mapping.bank_colors_of_node(0)) == list(range(32))
        assert list(mapping.bank_colors_of_node(3)) == list(range(96, 128))
        for color in mapping.bank_colors_of_node(2):
            assert mapping.node_of_bank_color(color) == 2

    def test_out_of_range(self, mapping):
        with pytest.raises(ValueError):
            mapping.split_bank_color(128)


class TestDecodeCompose:
    def test_roundtrip_fields(self, mapping):
        paddr = mapping.compose(2, 1, 0, 5, 0xABC)
        loc = mapping.decode(paddr)
        assert (loc.node, loc.channel, loc.rank, loc.bank) == (2, 1, 0, 5)

    def test_bank_color_consistency(self, mapping):
        paddr = mapping.compose(1, 0, 1, 3, 999)
        assert mapping.bank_color(paddr) == mapping.compose_bank_color(1, 0, 1, 3)

    def test_rest_too_large(self, mapping):
        free_bits = mapping.total_bits - sum(
            len(p) for p in mapping.fields.values()
        )
        with pytest.raises(ValueError):
            mapping.compose(0, 0, 0, 0, 1 << free_bits)

    def test_paddr_range_check(self, mapping):
        with pytest.raises(ValueError):
            mapping.decode(mapping.memory_bytes)

    @given(st.integers(0, 2**20 - 1))
    def test_llc_color_is_bits_12_16(self, page_index):
        mapping = opteron_6128().mapping
        paddr = (page_index << 12) % mapping.memory_bytes
        assert mapping.llc_color(paddr) == (paddr >> 12) & 0x1F


class TestFrameColors:
    def test_frame_invariance(self, mapping):
        assert mapping.frame_colors_invariant()
        # Every address inside one frame shares the frame's colors.
        pfn = 12345
        base = pfn << mapping.page_bits
        for offset in (0, 128, 4095):
            assert mapping.bank_color(base + offset) == mapping.frame_bank_color(pfn)
            assert mapping.llc_color(base + offset) == mapping.frame_llc_color(pfn)

    def test_non_invariant_detected(self):
        m = AddressMapping(
            total_bits=26, line_bits=6, page_bits=12,
            fields={
                "node": (25,), "channel": (7,),  # channel inside the page!
                "rank": (16,), "bank": (17, 18),
            },
            llc_color_positions=(12, 13),
        )
        assert not m.frame_colors_invariant()

    def test_frame_color_table_matches_scalar(self, mapping):
        bank, llc = mapping.frame_color_table()
        for pfn in (0, 1, 7777, mapping.num_frames - 1):
            assert bank[pfn] == mapping.frame_bank_color(pfn)
            assert llc[pfn] == mapping.frame_llc_color(pfn)

    def test_color_distribution_uniform(self):
        mapping = tiny_machine().mapping
        bank, llc = mapping.frame_color_table()
        counts = np.bincount(bank, minlength=mapping.num_bank_colors)
        assert (counts == counts[0]).all()
        counts = np.bincount(llc, minlength=mapping.num_llc_colors)
        assert (counts == counts[0]).all()

    def test_populated_combos_are_exactly_the_compatible_ones(self):
        mapping = tiny_machine().mapping
        bank, llc = mapping.frame_color_table()
        combos = set(zip(bank.tolist(), llc.tolist()))
        expected = {
            (bc, lc)
            for bc in range(mapping.num_bank_colors)
            for lc in range(mapping.num_llc_colors)
            if mapping.colors_compatible(bc, lc)
        }
        assert combos == expected
        # Each combo holds the same number of frames.
        from collections import Counter

        counts = Counter(zip(bank.tolist(), llc.tolist()))
        assert set(counts.values()) == {mapping.frames_per_combo()}


class TestVectorised:
    def test_bank_color_vec_matches_scalar(self, mapping):
        paddrs = np.array(
            [0, 4096, 123 << 12, mapping.memory_bytes - 4096], dtype=np.int64
        )
        vec = mapping.bank_color_vec(paddrs)
        for p, v in zip(paddrs.tolist(), vec.tolist()):
            assert mapping.bank_color(p) == v

    def test_llc_color_vec_matches_scalar(self, mapping):
        paddrs = np.arange(0, 1 << 20, 4096, dtype=np.int64)
        vec = mapping.llc_color_vec(paddrs)
        for p, v in zip(paddrs.tolist(), vec.tolist()):
            assert mapping.llc_color(p) == v


class TestRow:
    def test_row_is_frame_granular(self, mapping):
        # With row_bits_start=12 and frame-invariant fields, two addresses
        # share a row iff they share a frame (within the same bank).
        a = mapping.compose(0, 0, 0, 0, 0)
        b = a + 4096 * (1 << 0)  # next frame, possibly another bank
        assert mapping.row_of(a) == mapping.row_of(a + 128)
        assert mapping.row_of(a) != mapping.row_of(b) or (
            mapping.bank_color(a) != mapping.bank_color(b)
        )

    def test_contiguous_helper(self):
        assert contiguous(5, 3) == (5, 6, 7)
