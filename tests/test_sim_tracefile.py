"""Unit tests for program serialisation and rebasing."""

import numpy as np
import pytest

from repro.sim.barrier import Program, Section
from repro.sim.trace import Trace
from repro.sim.tracefile import load_program, rebase_program, save_program


def sample_program():
    t0 = Trace(
        vaddrs=np.arange(10, dtype=np.int64) * 64 + 0x1000,
        writes=np.array([i % 2 == 0 for i in range(10)]),
        think_ns=3.5,
        label="t0",
    )
    t1 = Trace(
        vaddrs=np.arange(5, dtype=np.int64) * 64 + 0x9000,
        writes=np.zeros(5, dtype=bool),
        think_ns=np.linspace(1.0, 5.0, 5),
        label="t1",
    )
    return Program(
        sections=[
            Section("serial", {0: t0}, label="init"),
            Section("parallel", {0: t0, 1: t1}, label="compute"),
        ],
        nthreads=2,
        name="sample",
    )


class TestRoundtrip:
    def test_save_load_identical(self, tmp_path):
        path = tmp_path / "prog.npz"
        original = sample_program()
        save_program(original, path)
        loaded = load_program(path)
        assert loaded.name == "sample"
        assert loaded.nthreads == 2
        assert len(loaded.sections) == 2
        for s_orig, s_load in zip(original.sections, loaded.sections):
            assert s_load.kind == s_orig.kind
            assert s_load.label == s_orig.label
            for tid in s_orig.traces:
                a, b = s_orig.traces[tid], s_load.traces[tid]
                assert (a.vaddrs == b.vaddrs).all()
                assert (a.writes == b.writes).all()
                assert a.total_think_ns == pytest.approx(b.total_think_ns)

    def test_per_access_think_preserved(self, tmp_path):
        path = tmp_path / "prog.npz"
        save_program(sample_program(), path)
        loaded = load_program(path)
        think = loaded.sections[1].traces[1].think_ns
        assert isinstance(think, np.ndarray)
        assert think[0] == pytest.approx(1.0)

    def test_version_check(self, tmp_path):
        import json

        path = tmp_path / "bad.npz"
        manifest = {"version": 99, "name": "x", "nthreads": 1, "sections": []}
        np.savez(path, __manifest__=np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8))
        with pytest.raises(ValueError, match="version"):
            load_program(path)


class TestRebase:
    def test_rebase_shifts_min_to_base(self):
        program = sample_program()
        rebased = rebase_program(program, new_base=0x100000)
        lo = min(
            int(t.vaddrs.min())
            for s in rebased.sections
            for t in s.traces.values()
        )
        assert lo == 0x100000

    def test_rebase_preserves_structure(self):
        program = sample_program()
        rebased = rebase_program(program, new_base=0x100000)
        orig = program.sections[1].traces[1].vaddrs
        new = rebased.sections[1].traces[1].vaddrs
        assert ((new - orig) == (new[0] - orig[0])).all()

    def test_rebased_program_runs(self, tmp_path):
        """A saved workload replayed into a different process works."""
        from repro.alloc.policies import Policy
        from repro.core.session import ColoredTeam
        from repro.core.tintmalloc import TintMalloc
        from repro.machine.presets import tiny_machine
        from repro.sim.engine import Engine, MemorySystem
        from repro.util.rng import RngStream
        from repro.util.units import KIB
        from repro.workloads.base import SpmdSpec, build_spmd_program

        spec = SpmdSpec(name="x", per_thread_bytes=8 * KIB, shared_bytes=0,
                        master_init_fraction=0.0, passes=1,
                        compute_sections=1, serial_accesses=0)
        machine = tiny_machine()
        tm1 = TintMalloc(machine=machine)
        team1 = ColoredTeam.create(tm1, [0, 1], Policy.BUDDY)
        program = build_spmd_program(spec, team1, RngStream(0))
        path = tmp_path / "w.npz"
        save_program(program, path)

        # Fresh machine/team: rebase onto its heap.
        machine2 = tiny_machine()
        tm2 = TintMalloc(machine=machine2)
        team2 = ColoredTeam.create(tm2, [0, 1], Policy.BUDDY)
        base = team2.master.malloc(64 * KIB)
        replay = rebase_program(load_program(path), base)
        memory = MemorySystem.for_machine(machine2)
        metrics = Engine(team2, memory).run(replay)
        assert metrics.runtime > 0
