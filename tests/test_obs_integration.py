"""End-to-end observability: a traced synthetic run (acceptance tests).

Covers the PR's acceptance criteria: the Perfetto export of a full
synthetic run is schema-valid trace_event JSON, and the counter CSV's
row-conflict / remote-access timelines agree with the RunMetrics rollups
to within 1%.  Also checks determinism: identical seeds yield identical
traces.
"""

import csv
import io
import json

import pytest

from repro.alloc.policies import Policy
from repro.experiments.runner import run_synthetic
from repro.obs import Observer, counters_to_csv, to_perfetto
from repro.obs.events import SpanEvent
from repro.workloads.synthetic import SyntheticSpec

#: BPM colors banks but ignores the controller, so the run has both row
#: conflicts and a large remote-access fraction — exercising both
#: timelines the acceptance criteria compare against rollups.
POLICY = Policy.BPM
SPEC = SyntheticSpec(per_thread_bytes=64 * 1024)


def traced_run(policy=POLICY):
    obs = Observer(sample_interval_ns=2000.0, ring_capacity=65536)
    record = run_synthetic(
        policy, "8_threads_4_nodes", profile="mini", spec=SPEC, observer=obs
    )
    return obs, record


@pytest.fixture(scope="module")
def traced():
    return traced_run()


class TestEventCapture:
    def test_all_layers_emit(self, traced):
        obs, record = traced
        tracks = {e.track for e in obs.events}
        assert {"engine", "threads", "dram", "kernel"} <= tracks
        names = {e.name for e in obs.events}
        assert "dram.access" in names          # DRAM transactions
        assert "fault" in names                # page-fault service
        assert "barrier.wait" in names         # barrier idle
        assert "kernel.alloc.colored" in names  # colored allocations

    def test_dram_span_count_matches_rollup(self, traced):
        obs, record = traced
        dram_spans = [
            e for e in obs.events
            if isinstance(e, SpanEvent) and e.name == "dram.access"
        ]
        assert len(dram_spans) == record.dram_accesses
        remote_spans = sum(1 for e in dram_spans if e.args["hops"] > 0)
        assert remote_spans == round(
            record.remote_fraction * record.dram_accesses
        )

    def test_fault_spans_match_fault_rollup(self, traced):
        obs, record = traced
        faults = [e for e in obs.events if e.name == "fault"]
        assert len(faults) == record.faults

    def test_section_spans_cover_runtime(self, traced):
        obs, record = traced
        sections = [
            e for e in obs.events
            if isinstance(e, SpanEvent) and e.track == "engine"
        ]
        assert sections
        assert max(e.end for e in sections) == pytest.approx(record.runtime)
        assert obs.open_spans(track="engine") == []


class TestPerfettoSchema:
    def test_loadable_and_schema_valid(self, traced):
        obs, _ = traced
        doc = json.loads(json.dumps(to_perfetto(obs)))
        events = doc["traceEvents"]
        assert events
        for e in events:
            assert isinstance(e["ph"], str) and e["ph"] in "XiCM"
            assert isinstance(e["pid"], int)
            assert isinstance(e["tid"], int)
            if e["ph"] != "M":
                assert isinstance(e["ts"], (int, float))
                assert e["ts"] >= 0
            if e["ph"] == "X":
                assert e["dur"] >= 0


class TestCounterTimelines:
    def _timeline(self, obs, name):
        rows = list(csv.reader(io.StringIO(counters_to_csv(obs))))
        col = rows[0].index(name)
        return [float(r[col]) for r in rows[1:]]

    def _timeline_total(self, series):
        """First value plus the per-interval deltas — the 'timeline sum'."""
        return series[0] + sum(
            b - a for a, b in zip(series, series[1:])
        )

    def test_row_conflict_timeline_matches_rollup(self, traced):
        obs, record = traced
        assert obs.samples.evicted == 0  # full timeline retained
        series = self._timeline(obs, "dram.row_conflicts")
        total = self._timeline_total(series)
        assert record.row_conflicts > 0
        assert total == pytest.approx(record.row_conflicts, rel=0.01)

    def test_remote_access_timeline_matches_rollup(self, traced):
        obs, record = traced
        series = self._timeline(obs, "dram.remote_accesses")
        total = self._timeline_total(series)
        remote_rollup = record.remote_fraction * record.dram_accesses
        assert remote_rollup > 0
        assert total == pytest.approx(remote_rollup, rel=0.01)

    def test_monotonic_counters(self, traced):
        obs, _ = traced
        for name in ("dram.accesses", "cache.llc.misses",
                     "kernel.colored_allocs"):
            series = self._timeline(obs, name)
            assert all(b >= a for a, b in zip(series, series[1:]))

    def test_final_sample_at_run_end(self, traced):
        obs, record = traced
        ts, _ = obs.samples.last()
        assert ts == pytest.approx(record.runtime)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        """EXPERIMENTS.md claim: traces are reproducible given the seed."""
        obs_a, rec_a = traced_run()
        obs_b, rec_b = traced_run()
        assert rec_a.runtime == rec_b.runtime
        assert [e.to_dict() for e in obs_a.events] == [
            e.to_dict() for e in obs_b.events
        ]
        assert list(obs_a.samples) == list(obs_b.samples)


class TestDisabledPath:
    def test_default_runs_untraced(self):
        record = run_synthetic(
            POLICY, "8_threads_4_nodes", profile="mini", spec=SPEC
        )
        traced_record = traced_run()[1]
        # The observer must not perturb the simulation itself.
        assert record.runtime == traced_record.runtime
        assert record.row_conflicts == traced_record.row_conflicts
