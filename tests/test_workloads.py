"""Unit tests for the workload generators."""

import numpy as np
import pytest

from repro.alloc.policies import Policy
from repro.core.session import ColoredTeam
from repro.core.tintmalloc import TintMalloc
from repro.machine.presets import tiny_machine
from repro.util.rng import RngStream
from repro.util.units import KIB
from repro.workloads.base import SpmdSpec, build_spmd_program
from repro.workloads.registry import BENCH_ORDER, WORKLOADS, get_workload, suite_of
from repro.workloads.synthetic import (
    SyntheticSpec,
    alternating_stride_lines,
    build_synthetic_program,
)

TINY_SPEC = SpmdSpec(
    name="probe",
    per_thread_bytes=16 * KIB,
    shared_bytes=8 * KIB,
    master_init_fraction=0.25,
    passes=1,
    compute_sections=2,
    pattern="stream",
    serial_accesses=10,
)


@pytest.fixture
def team(tm):
    return ColoredTeam.create(tm, [0, 1, 2, 3], Policy.BUDDY)


def build(spec, team, seed=0):
    return build_spmd_program(spec, team, RngStream(seed, "t"))


class TestProgramStructure:
    def test_sections_order(self, team):
        p = build(TINY_SPEC, team)
        labels = [s.label for s in p.sections]
        assert labels[0] == "serial-init"
        assert labels[1] == "parallel-init"
        assert "compute[0]" in labels and "compute[1]" in labels
        assert "serial[0]" in labels  # between the two compute sections

    def test_every_thread_computes(self, team):
        p = build(TINY_SPEC, team)
        compute = [s for s in p.sections if s.label.startswith("compute")]
        for s in compute:
            assert set(s.traces) == {0, 1, 2, 3}

    def test_compute_length(self, team):
        p = build(TINY_SPEC, team)
        lines = TINY_SPEC.per_thread_bytes // 64
        compute0 = next(s for s in p.sections if s.label == "compute[0]")
        assert len(compute0.traces[1]) == lines * TINY_SPEC.passes


class TestDataPlacement:
    def test_input_loaded_uncolored(self, tm):
        """Shared/master-init data is faulted before coloring applies."""
        team = ColoredTeam.create(tm, [0, 1, 2, 3], Policy.MEM_LLC)
        build(TINY_SPEC, team)
        space = tm.process.address_space
        pool = tm.kernel.pool
        master = team.master.task
        # Shared pages exist already and are NOT restricted to the
        # master's colors.
        shared_vma = next(
            v for v in space.vmas if v.label.endswith(":shared")
        )
        for vpn in range(shared_vma.start >> 12, shared_vma.end >> 12):
            assert space.page_table.get(vpn) is not None
        # Every build-time fault went down the UNCOLORED path, even though
        # the master's TCB carries colors for the rest of the run.
        assert master.colored
        assert master.colored_allocations == 0
        assert master.pages_allocated > 0
        assert pool is tm.kernel.pool  # sanity

    def test_worker_pages_fault_later_with_colors(self, tm):
        team = ColoredTeam.create(tm, [0, 1, 2, 3], Policy.MEM_LLC)
        p = build(TINY_SPEC, team)
        init = next(s for s in p.sections if s.label == "parallel-init")
        space = tm.process.address_space
        # Worker partitions (beyond the master slice) are unmapped at build.
        vaddr = int(init.traces[2].vaddrs[0])
        assert space.page_table.get(vaddr >> 12) is None


class TestPatterns:
    @pytest.mark.parametrize("pattern,chunk", [
        ("stream", 1), ("strided", 1), ("random", 4),
    ])
    def test_each_pass_covers_all_lines(self, team, pattern, chunk):
        spec = SpmdSpec(
            name="p", per_thread_bytes=16 * KIB, shared_bytes=0,
            master_init_fraction=0.0, passes=1, compute_sections=1,
            pattern=pattern, chunk_lines=chunk, shared_fraction=0.0,
            serial_accesses=0,
        )
        p = build(spec, team)
        compute = next(s for s in p.sections if s.label == "compute[0]")
        lines = spec.per_thread_bytes // 64
        base = int(min(compute.traces[0].vaddrs))
        seen = {(int(v) - base) // 64 for v in compute.traces[0].vaddrs}
        assert seen == set(range(lines))

    def test_random_chunks_are_contiguous_runs(self, team):
        spec = SpmdSpec(
            name="p", per_thread_bytes=16 * KIB, shared_bytes=0,
            master_init_fraction=0.0, passes=1, compute_sections=1,
            pattern="random", chunk_lines=8, shared_fraction=0.0,
            serial_accesses=0,
        )
        p = build(spec, team)
        trace = next(
            s for s in p.sections if s.label == "compute[0]"
        ).traces[0]
        deltas = np.diff(trace.vaddrs)
        # Most steps are +64 (within a chunk).
        assert (deltas == 64).mean() > 0.8

    def test_shared_fraction_mixed_in(self, team):
        spec = SpmdSpec(
            name="p", per_thread_bytes=16 * KIB, shared_bytes=8 * KIB,
            master_init_fraction=0.0, passes=1, compute_sections=1,
            pattern="stream", shared_fraction=0.3, serial_accesses=0,
        )
        p = build(spec, team)
        trace = next(
            s for s in p.sections if s.label == "compute[0]"
        ).traces[1]
        # Some accesses fall outside the thread's partition.
        partition_lo = int(trace.vaddrs.min())
        frac_outside = (
            (trace.vaddrs < partition_lo + 8 * KIB).mean()
        )
        assert frac_outside > 0.05

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            SpmdSpec(name="x", per_thread_bytes=4096, shared_bytes=0,
                     pattern="zigzag")


class TestSeeding:
    def test_same_seed_same_traces(self, tm):
        team = ColoredTeam.create(tm, [0, 1], Policy.BUDDY)
        p1 = build(TINY_SPEC, team, seed=3)
        team2 = ColoredTeam.create(
            TintMalloc(machine=tiny_machine()), [0, 1], Policy.BUDDY
        )
        p2 = build(TINY_SPEC, team2, seed=3)
        for s1, s2 in zip(p1.sections, p2.sections):
            for tid in s1.traces:
                # Same shape and same offsets relative to the base.
                v1 = s1.traces[tid].vaddrs - s1.traces[tid].vaddrs.min()
                v2 = s2.traces[tid].vaddrs - s2.traces[tid].vaddrs.min()
                assert (v1 == v2).all()

    def test_scaled_shrinks(self):
        spec = get_workload("lbm")
        small = spec.scaled(0.25)
        assert small.per_thread_bytes == spec.per_thread_bytes // 4
        assert small.name == spec.name


class TestRegistry:
    def test_all_six_present(self):
        assert set(BENCH_ORDER) == set(WORKLOADS)
        assert len(BENCH_ORDER) == 6

    def test_suites(self):
        assert suite_of("lbm") == "spec"
        assert suite_of("freqmine") == "parsec"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_workload("doom")


class TestSynthetic:
    def test_alternating_stride_covers_once(self):
        for n in (2, 7, 64, 101):
            order = alternating_stride_lines(n)
            assert sorted(order.tolist()) == list(range(n))

    def test_alternating_stride_starts_mid(self):
        order = alternating_stride_lines(100)
        assert order[0] == 50
        assert set(order[:3].tolist()) == {50, 51, 49}

    def test_program_one_parallel_section(self, tm):
        team = ColoredTeam.create(tm, [0, 1], Policy.BUDDY)
        spec = SyntheticSpec(per_thread_bytes=64 * KIB)
        p = build_synthetic_program(spec, team)
        assert len(p.sections) == 1
        assert p.sections[0].kind == "parallel"
        # All writes, one access per line.
        trace = p.sections[0].traces[0]
        assert trace.writes.all()
        assert len(trace) == 64 * KIB // 64


class TestSyntheticForMachine:
    """The 4-node calibration must rescale, not be assumed (regression:
    the spec once hardcoded the Opteron's node count)."""

    def test_identity_on_four_node_presets(self):
        from repro.machine.presets import opteron_6128_scaled

        base = SyntheticSpec()
        spec = SyntheticSpec.for_machine(opteron_6128_scaled())
        assert spec.per_thread_bytes == base.per_thread_bytes
        assert spec.think_ns == base.think_ns

    def test_two_node_preset_halves_the_footprint(self):
        from repro.machine.presets import modern_8ch, tiny_machine

        base = SyntheticSpec()
        for machine in (modern_8ch(), tiny_machine()):
            assert machine.topology.num_nodes == 2
            spec = SyntheticSpec.for_machine(machine)
            assert spec.per_thread_bytes == base.per_thread_bytes // 2

    def test_eight_node_preset_doubles_the_footprint(self):
        from repro.machine.presets import opteron_4s

        machine = opteron_4s()
        assert machine.topology.num_nodes == 8
        spec = SyntheticSpec.for_machine(machine)
        assert spec.per_thread_bytes == SyntheticSpec().per_thread_bytes * 2

    def test_scale_composes_with_node_count_and_floors(self):
        from repro.machine.presets import modern_8ch

        spec = SyntheticSpec.for_machine(modern_8ch(), scale=0.05)
        base = SyntheticSpec()
        assert spec.per_thread_bytes == max(
            64 * KIB, int(base.per_thread_bytes * 0.05 * 2 / 4)
        )
        tiny = SyntheticSpec.for_machine(modern_8ch(), scale=1e-6)
        assert tiny.per_thread_bytes == 64 * KIB
