"""Unit tests for the labeled metrics plane (repro.obs.metrics)."""

import json
import math

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    MetricsRegistry,
    find_metric,
    quantile_from_snapshot,
    render_prometheus,
    snapshot_delta,
    snapshot_from_jsonl,
    snapshot_to_jsonl,
)


class TestCounters:
    def test_labeled_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("reqs", op="get")
        b = reg.counter("reqs", op="get")
        c = reg.counter("reqs", op="put")
        assert a is b and a is not c
        a.inc()
        a.inc(2.0)
        assert a.value == 3.0 and c.value == 0.0

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1.0)


class TestGauges:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth", shard=0)
        g.set(5)
        g.inc()
        g.dec(2.0)
        assert g.value == 4.0


class TestHistogram:
    def test_single_sample_is_exact(self):
        """A one-sample histogram must report that sample at every q."""
        h = MetricsRegistry().histogram("lat")
        h.observe(0.125)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 0.125
        assert h.mean == 0.125

    def test_empty_quantile_is_none(self):
        h = MetricsRegistry().histogram("lat")
        assert h.quantile(0.5) is None
        assert h.mean is None

    def test_quantile_bounded_relative_error(self):
        """Bucket quantization error is bounded by ~1/sub at any scale."""
        h = MetricsRegistry().histogram("lat", sub=16)
        values = [1e-6 * (1.07 ** i) for i in range(400)]  # spans ~12 octaves
        for v in values:
            h.observe(v)
        values.sort()
        for q in (0.1, 0.5, 0.9, 0.99):
            exact = values[min(len(values) - 1,
                               max(0, math.ceil(q * len(values)) - 1))]
            got = h.quantile(q)
            assert abs(got - exact) / exact < 0.15

    def test_extremes_clamped_to_observed(self):
        h = MetricsRegistry().histogram("lat")
        for v in (0.001, 0.002, 0.93):
            h.observe(v)
        assert h.quantile(1.0) == 0.93
        assert h.quantile(0.0) == 0.001

    def test_zero_and_negative_bucket(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(0.0)
        h.observe(-3.0)
        h.observe(8.0)
        assert h.zero == 2 and h.count == 3
        assert h.quantile(0.5) == 0.0  # zero bucket reports max(0, min)

    def test_invalid_quantile_raises(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestSnapshotAndMerge:
    def _loaded(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("jobs", outcome="ok").inc(3)
        reg.gauge("depth").set(7)
        for v in (0.01, 0.02, 0.04):
            reg.histogram("lat", shard=0).observe(v)
        return reg

    def test_snapshot_is_json_roundtrippable(self):
        snap = self._loaded().snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_empty_registry_snapshot(self):
        snap = MetricsRegistry().snapshot()
        assert snap == {"counters": [], "gauges": [], "histograms": []}
        assert render_prometheus(snap) == ""
        assert snapshot_to_jsonl(snap) == ""
        assert snapshot_from_jsonl("") == snap

    def test_merge_adds_counters_and_buckets(self):
        a, b = self._loaded(), self._loaded()
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert find_metric(snap, "counters", "jobs", outcome="ok")["value"] == 6
        hist = find_metric(snap, "histograms", "lat", shard=0)
        assert hist["count"] == 6
        assert hist["sum"] == pytest.approx(0.14)
        # gauges last-write-win
        assert find_metric(snap, "gauges", "depth")["value"] == 7

    def test_merge_into_empty_equals_source(self):
        src = self._loaded().snapshot()
        dst = MetricsRegistry()
        dst.merge(src)
        assert dst.snapshot() == src

    def test_quantiles_survive_merge(self):
        """Cross-process p99 must come from merged buckets, not samples."""
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (0.01,) * 99:
            a.histogram("lat").observe(v)
        b.histogram("lat").observe(10.0)
        a.merge(b.snapshot())
        snap = find_metric(a.snapshot(), "histograms", "lat")
        assert quantile_from_snapshot(snap, 0.5) == pytest.approx(0.01, rel=0.1)
        assert quantile_from_snapshot(snap, 1.0) == 10.0

    def test_snapshot_delta(self):
        reg = MetricsRegistry()
        reg.counter("jobs").inc(2)
        reg.histogram("lat").observe(0.01)
        old = reg.snapshot()
        reg.counter("jobs").inc(3)
        for _ in range(3):
            reg.histogram("lat").observe(0.02)
        delta = snapshot_delta(old, reg.snapshot())
        assert find_metric(delta, "counters", "jobs")["value"] == 3
        hist = find_metric(delta, "histograms", "lat")
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(0.06)
        # Window quantile reflects only the new observations (non-extreme
        # rank: delta min/max are not invertible and keep the totals').
        assert quantile_from_snapshot(hist, 0.5) == pytest.approx(0.02, rel=0.1)

    def test_delta_with_new_instrument_taken_whole(self):
        reg = MetricsRegistry()
        old = reg.snapshot()
        reg.counter("fresh").inc(4)
        delta = snapshot_delta(old, reg.snapshot())
        assert find_metric(delta, "counters", "fresh")["value"] == 4


class TestExposition:
    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("sched.jobs", outcome="ok").inc(2)
        reg.gauge("sched.queue_depth").set(3)
        reg.histogram("sched.attempt_s").observe(0.5)
        text = render_prometheus(reg.snapshot())
        assert '# TYPE sched_jobs_total counter' in text
        assert 'sched_jobs_total{outcome="ok"} 2' in text
        assert "sched_queue_depth 3" in text
        assert "# TYPE sched_attempt_s histogram" in text
        assert 'sched_attempt_s_bucket{le="+Inf"} 1' in text
        assert "sched_attempt_s_count 1" in text
        # cumulative bucket for the populated upper bound exists
        assert "_bucket{le=" in text

    def test_prometheus_bucket_cumulative_and_bounded(self):
        reg = MetricsRegistry()
        for v in (0.1, 0.2, 0.4, 0.8):
            reg.histogram("lat").observe(v)
        text = render_prometheus(reg.snapshot())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("lat_bucket")
        ]
        assert counts == sorted(counts)  # cumulative
        assert counts[-1] == 4           # +Inf bucket == count

    def test_jsonl_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("a", k="v").inc()
        reg.gauge("b").set(2)
        reg.histogram("c").observe(1.5)
        snap = reg.snapshot()
        assert snapshot_from_jsonl(snapshot_to_jsonl(snap)) == snap


class TestAmbient:
    def test_install_uninstall(self):
        assert obs_metrics.active() is None
        reg = MetricsRegistry()
        obs_metrics.install(reg)
        try:
            assert obs_metrics.active() is reg
        finally:
            obs_metrics.uninstall()
        assert obs_metrics.active() is None

    def test_installed_scope_restores_previous(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with obs_metrics.installed(outer):
            with obs_metrics.installed(inner):
                assert obs_metrics.active() is inner
            assert obs_metrics.active() is outer
        assert obs_metrics.active() is None

    def test_store_records_into_ambient_registry(self):
        from repro.service.store import MemoryStore

        store = MemoryStore()
        with obs_metrics.installed(MetricsRegistry()) as reg:
            store.put("d" * 64, {"spec": 1}, {"record": 1})
            assert store.get("d" * 64) is not None
            assert store.get("missing") is None
        snap = reg.snapshot()
        assert find_metric(snap, "counters", "store.ops",
                           op="get", result="hit")["value"] == 1
        assert find_metric(snap, "counters", "store.ops",
                           op="get", result="miss")["value"] == 1
        assert find_metric(snap, "histograms", "store.put_s")["count"] == 1

    def test_engine_records_per_run_metrics(self):
        from repro.alloc.policies import Policy
        from repro.experiments.runner import run_synthetic

        with obs_metrics.installed(MetricsRegistry()) as reg:
            run_synthetic(Policy.BUDDY, "4_threads_4_nodes", profile="mini")
        snap = reg.snapshot()
        runs = find_metric(snap, "counters", "engine.runs")
        accesses = find_metric(snap, "counters", "engine.accesses")
        assert runs["value"] == 1
        assert accesses["value"] > 0
        sections = [h for h in snap["histograms"]
                    if h["name"] == "engine.section_ns"]
        assert sections and all(h["count"] > 0 for h in sections)

    def test_faultline_injections_counted(self):
        from repro.faultline import hooks as fault_hooks
        from repro.faultline.plan import FaultPlan, FaultRule

        plan = FaultPlan(seed=7, rules=(
            FaultRule(site="store.get.io", probability=1.0),
        ))
        with obs_metrics.installed(MetricsRegistry()) as reg:
            with fault_hooks.armed(plan):
                assert fault_hooks.should_fire("store.get.io", "x") is not None
        snap = reg.snapshot()
        hit = find_metric(snap, "counters", "faultline.injections",
                          site="store.get.io")
        assert hit is not None and hit["value"] == 1
