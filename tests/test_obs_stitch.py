"""Unit tests for trace contexts and cross-process stitching."""

import json

from repro.obs.stitch import (
    TraceCollector,
    make_span,
    now_ns,
    span_children,
    span_index,
    spans_from_jsonl,
    spans_to_jsonl,
    stitch_perfetto,
    trace_roots,
)
from repro.obs.tracectx import TraceContext


class TestTraceContext:
    def test_root_and_child_chain(self):
        root = TraceContext.root()
        child = root.child()
        grand = child.child()
        assert child.trace_id == root.trace_id == grand.trace_id
        assert child.parent_span_id == root.span_id
        assert grand.parent_span_id == child.span_id
        assert len({root.span_id, child.span_id, grand.span_id}) == 3

    def test_wire_roundtrip(self):
        ctx = TraceContext.root().child()
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_from_wire_tolerates_junk(self):
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire("nonsense") is None
        assert TraceContext.from_wire({}) is None
        assert TraceContext.from_wire({"trace_id": "t"}) is None


def _tree(n_jobs: int = 3) -> list[dict]:
    """Synthesize an n-job three-process span forest like the service's."""
    spans = []
    t = now_ns()
    for i in range(n_jobs):
        client = TraceContext.root()
        job = client.child()
        attempt = job.child()
        worker = attempt.child()
        base = t + i * 1_000_000
        spans.append(make_span("client.submit", "client", base, base + 900_000,
                               ctx=client, pid=100))
        spans.append(make_span("sched.job", "scheduler", base + 10_000,
                               base + 880_000, ctx=job, pid=200))
        spans.append(make_span("sched.attempt", "scheduler", base + 20_000,
                               base + 870_000, ctx=attempt, pid=200, tid=i))
        spans.append(make_span("worker.attempt", "worker", base + 30_000,
                               base + 860_000, ctx=worker, pid=300 + i))
    return spans


class TestCollector:
    def test_add_extend_clear(self):
        col = TraceCollector()
        col.span("a", "p", 0, 10)
        col.extend([make_span("b", "p", 5, 15)])
        assert len(col) == 2
        drained = col.clear()
        assert len(drained) == 2 and len(col) == 0

    def test_bounded_with_drop_count(self):
        col = TraceCollector(max_spans=2)
        for i in range(5):
            col.span(f"s{i}", "p", i, i + 1)
        assert len(col) == 2 and col.dropped == 3


class TestAnalysis:
    def test_one_root_per_trace(self):
        spans = _tree(4)
        roots = trace_roots(spans)
        assert len(roots) == 4
        assert all(len(r) == 1 for r in roots.values())
        assert all(r[0]["name"] == "client.submit" for r in roots.values())

    def test_orphans_are_visible(self):
        spans = _tree(1)
        spans = [s for s in spans if s["name"] != "sched.job"]  # lose a link
        roots = trace_roots(spans)
        (members,) = roots.values()
        names = {m["name"] for m in members}
        assert "client.submit" in names and "sched.attempt" in names

    def test_children_index(self):
        spans = _tree(1)
        idx = span_index(spans)
        kids = span_children(spans)
        attempt = next(s for s in spans if s["name"] == "sched.attempt")
        (worker,) = kids[attempt["span_id"]]
        assert worker["name"] == "worker.attempt"
        assert idx[worker["parent_span_id"]] is attempt


class TestPerfetto:
    def test_empty_input(self):
        doc = stitch_perfetto([])
        assert doc["traceEvents"] == []

    def test_track_ids_unique_and_ts_monotonic(self):
        doc = stitch_perfetto(_tree(5))
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        pids = [e["pid"] for e in meta]
        assert len(pids) == len(set(pids))  # unique track ids
        # 3 logical processes; workers get one track per pid
        assert len(pids) == 2 + 5
        per_track: dict[int, list[float]] = {}
        for e in events:
            if e["ph"] == "X":
                per_track.setdefault(e["pid"], []).append(e["ts"])
        for ts_list in per_track.values():
            assert ts_list == sorted(ts_list)  # monotonic per track
        # rebased: starts near zero, not epoch microseconds
        assert min(ts for lst in per_track.values() for ts in lst) == 0.0

    def test_flow_arrows_on_cross_process_edges(self):
        doc = stitch_perfetto(_tree(2))
        events = doc["traceEvents"]
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        # per job: client->sched, sched->worker cross-track edges
        # (sched.job -> sched.attempt shares a track: no arrow)
        assert len(starts) == len(finishes) == 4
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}

    def test_json_serializable_and_args_carry_ids(self):
        doc = stitch_perfetto(_tree(1))
        text = json.dumps(doc)
        loaded = json.loads(text)
        worker = next(e for e in loaded["traceEvents"]
                      if e.get("name") == "worker.attempt")
        assert "trace_id" in worker["args"]
        assert "parent_span_id" in worker["args"]


class TestJsonl:
    def test_roundtrip(self):
        spans = _tree(2)
        assert spans_from_jsonl(spans_to_jsonl(spans)) == spans

    def test_empty(self):
        assert spans_to_jsonl([]) == ""
        assert spans_from_jsonl("") == []
