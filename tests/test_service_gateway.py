"""HTTP gateway: endpoints, error codes, backpressure, SSE ordering.

Everything runs in one process (inline executor, stub runners where
noted) — the multi-process gateway→fleet path is covered by
``test_service_fleet.py``; here the HTTP surface itself is under test:
happy paths, 400 on malformed bodies, 404/405 on bad routes, 503 +
``Retry-After`` under queue backpressure, and in-order SSE status
streaming.
"""

from __future__ import annotations

import asyncio
import threading

from repro.obs.metrics import MetricsRegistry
from repro.service import JobSpec, ServiceClient
from repro.service.gateway import AsyncGatewayClient, GatewayServer


def _spec(rep: int = 0, config: str = "1ms") -> JobSpec:
    return JobSpec(kind="sleep", bench="sleep", config=config, rep=rep,
                   profile="mini")


def _run(coro):
    return asyncio.run(coro)


def test_submit_status_result_happy_path():
    async def main() -> None:
        registry = MetricsRegistry()
        with ServiceClient(shards=2, executor="inline",
                           metrics=registry) as client:
            gateway = GatewayServer(client, port=0)
            await gateway.start()
            api = AsyncGatewayClient("127.0.0.1", gateway.port)
            assert await api.healthz()

            code, resp = await api.submit(_spec(1))
            assert code == 202
            assert resp["ok"] and resp["status"] in ("queued", "running",
                                                     "completed")
            digest = resp["digest"]
            assert digest == _spec(1).digest()

            code, resp = await api.result(digest, timeout=30)
            assert code == 200
            assert resp["record"]["duration_ms"] == 1.0

            code, resp = await api.status(digest)
            assert code == 200 and resp["status"] == "completed"

            # wait=True folds submit+result into one round trip.
            code, resp = await api.submit(_spec(2), wait=True, timeout=30)
            assert code == 200 and resp["record"]["kind"] == "sleep"

            stats = await api.stats()
            assert stats["completed"] >= 2
            text = await api.metrics_text()
            assert "gateway_requests_total" in text
            await gateway.stop()

    _run(main())


def test_malformed_requests_get_400s_and_404s():
    async def main() -> None:
        with ServiceClient(shards=1, executor="inline") as client:
            gateway = GatewayServer(client, port=0)
            await gateway.start()
            api = AsyncGatewayClient("127.0.0.1", gateway.port)

            code, _, resp = await api._json("POST", "/v1/jobs", None)
            assert code == 400 and "JSON" in resp["error"]

            code, _, resp = await api._json("POST", "/v1/jobs", {"x": 1})
            assert code == 400 and "spec" in resp["error"]

            code, _, resp = await api._json(
                "POST", "/v1/jobs",
                {"spec": {"kind": "nope", "schema_version": 1}},
            )
            assert code == 400

            code, _, resp = await api._json("GET", "/v1/jobs/feedface")
            assert code == 404

            code, _, resp = await api._json("GET",
                                            "/v1/jobs/feedface/result")
            assert code == 404

            code, _, resp = await api._json("GET", "/v1/nothing")
            assert code == 404

            code, _, resp = await api._json("DELETE", "/v1/jobs")
            assert code == 405

            code, _, resp = await api._json("POST", "/v1/stats", {})
            assert code == 405
            await gateway.stop()

    _run(main())


def test_backpressure_surfaces_as_503_with_retry_after():
    gate = threading.Event()

    def stalled_runner(spec: JobSpec) -> dict:
        gate.wait(timeout=60)
        return {"ok": True}

    async def main() -> None:
        with ServiceClient(shards=1, queue_capacity=1, executor="inline",
                           runner=stalled_runner) as client:
            gateway = GatewayServer(client, port=0)
            await gateway.start()
            api = AsyncGatewayClient("127.0.0.1", gateway.port)

            # First job occupies the shard thread (blocked on the gate),
            # second fills the depth-1 queue, third must bounce.
            code, first = await api.submit(_spec(1))
            assert code == 202
            deadline = asyncio.get_event_loop().time() + 30
            while True:
                code, resp = await api.status(first["digest"])
                if resp["status"] == "running":
                    break
                assert asyncio.get_event_loop().time() < deadline
                await asyncio.sleep(0.01)
            code, _ = await api.submit(_spec(2))
            assert code == 202

            code, headers, resp = await api._json(
                "POST", "/v1/jobs", {"spec": _spec(3).to_json()}
            )
            assert code == 503
            assert "backpressure" in resp["error"]
            assert float(headers["retry-after"]) > 0

            gate.set()
            for rep in (1, 2):
                code, resp = await api.result(_spec(rep).digest(),
                                              timeout=30)
                assert code == 200, resp
            await gateway.stop()

    _run(main())


def test_sse_stream_is_in_order_and_terminates():
    async def main() -> None:
        with ServiceClient(shards=1, executor="inline") as client:
            gateway = GatewayServer(client, port=0)
            await gateway.start()
            api = AsyncGatewayClient("127.0.0.1", gateway.port)

            code, resp = await api.submit(_spec(7, config="250ms"))
            assert code == 202
            digest = resp["digest"]
            events = [event async for event in api.events(digest)]

            names = [name for name, _ in events]
            assert names[-1] == "done"
            assert all(name == "status" for name in names[:-1])
            seqs = [data["seq"] for _, data in events]
            assert seqs == list(range(len(events))), seqs
            statuses = [data["status"] for _, data in events[:-1]]
            order = {"queued": 0, "running": 1, "completed": 2}
            ranks = [order[s] for s in statuses]
            assert ranks == sorted(ranks), statuses
            assert statuses[-1] == "completed"
            assert events[-1][1]["status"] == "completed"
            assert all(data["digest"] == digest for _, data in events)

            # Streaming an already-terminal job yields its final state
            # immediately, then done.
            events = [event async for event in api.events(digest)]
            assert [name for name, _ in events] == ["status", "done"]
            assert events[0][1]["status"] == "completed"
            await gateway.stop()

    _run(main())


def test_gateway_submits_are_deduplicated_by_digest():
    async def main() -> None:
        with ServiceClient(store=":memory:", shards=1,
                           executor="inline") as client:
            gateway = GatewayServer(client, port=0)
            await gateway.start()
            api = AsyncGatewayClient("127.0.0.1", gateway.port)
            spec = _spec(5)
            code, first = await api.submit(spec, wait=True, timeout=30)
            assert code == 200
            code, second = await api.submit(spec)
            assert code == 202 and second["from_cache"] is True
            await gateway.stop()

    _run(main())
