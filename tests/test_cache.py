"""Unit + property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.machine.topology import CacheGeometry

SMALL = CacheGeometry(size_bytes=1024, line_bytes=64, ways=2)  # 8 sets


@pytest.fixture
def cache():
    return Cache(SMALL, name="test")


def line_in_set(set_index: int, tag: int, geometry=SMALL) -> int:
    """Build a line address landing in ``set_index`` (plain indexing)."""
    return (tag * geometry.num_sets) + set_index


class TestLookupInsert:
    def test_cold_miss(self, cache):
        assert not cache.lookup(5, False)
        assert cache.misses == 1

    def test_hit_after_insert(self, cache):
        cache.insert(5, dirty=False)
        assert cache.lookup(5, False)
        assert cache.hits == 1

    def test_insert_same_line_no_duplicate(self, cache):
        cache.insert(5, False)
        cache.insert(5, False)
        assert cache.occupancy() == 1

    def test_capacity_eviction_lru(self, cache):
        a, b, c = (line_in_set(3, t) for t in range(3))
        cache.insert(a, False)
        cache.insert(b, False)
        victim = cache.insert(c, False)
        assert victim is not None
        assert victim.line_addr == a  # least recently used

    def test_lookup_refreshes_lru(self, cache):
        a, b, c = (line_in_set(3, t) for t in range(3))
        cache.insert(a, False)
        cache.insert(b, False)
        cache.lookup(a, False)  # a becomes MRU
        victim = cache.insert(c, False)
        assert victim.line_addr == b

    def test_sets_are_independent(self, cache):
        for s in range(SMALL.num_sets):
            cache.insert(line_in_set(s, 0), False)
        assert cache.occupancy() == SMALL.num_sets
        for s in range(SMALL.num_sets):
            assert cache.occupancy_of_set(s) == 1


class TestDirty:
    def test_dirty_eviction_reported(self, cache):
        a, b, c = (line_in_set(1, t) for t in range(3))
        cache.insert(a, dirty=True)
        cache.insert(b, dirty=False)
        victim = cache.insert(c, False)
        assert victim.line_addr == a and victim.dirty

    def test_write_hit_sets_dirty(self, cache):
        a, b, c = (line_in_set(1, t) for t in range(3))
        cache.insert(a, False)
        cache.lookup(a, is_write=True)
        cache.insert(b, False)
        victim = cache.insert(c, False)
        assert victim.dirty  # a was dirtied by the write hit

    def test_mark_dirty_requires_presence(self, cache):
        assert not cache.mark_dirty(42)
        cache.insert(42, False)
        assert cache.mark_dirty(42)

    def test_clean_eviction_not_dirty(self, cache):
        a, b, c = (line_in_set(1, t) for t in range(3))
        cache.insert(a, False)
        cache.insert(b, False)
        victim = cache.insert(c, False)
        assert not victim.dirty


class TestInvalidate:
    def test_invalidate_present(self, cache):
        cache.insert(7, dirty=True)
        assert cache.invalidate(7)
        assert not cache.lookup(7, False)

    def test_invalidate_absent(self, cache):
        assert not cache.invalidate(7)

    def test_reset(self, cache):
        cache.insert(1, True)
        cache.lookup(1, False)
        cache.reset()
        assert cache.occupancy() == 0
        assert cache.hits == cache.misses == 0


class TestHashedIndexing:
    def test_hash_spreads_fixed_low_bits(self):
        """Lines whose plain set-index bits are identical (page-colored
        addresses) must still spread over sets under hashed indexing.

        The XOR fold reaches 3x the index width; color bits on real
        geometries (L1/L2 index >= 7 bits, color bits 5-9 above the line
        offset) are comfortably inside that.  The tiny 3-bit test geometry
        mimics the ratio by varying bits just above the index.
        """
        hashed = Cache(SMALL, hash_index=True)
        sets = {
            hashed.set_of_line((t << 4) | 3)  # same index bits, tag varies
            for t in range(64)
        }
        assert len(sets) > 4

    def test_plain_keeps_low_bits(self):
        plain = Cache(SMALL, hash_index=False)
        sets = {plain.set_of_line((t << 10) | 3) for t in range(64)}
        assert sets == {3}

    def test_hash_is_deterministic(self):
        c1, c2 = Cache(SMALL, hash_index=True), Cache(SMALL, hash_index=True)
        for line in (0, 9999, 123456):
            assert c1.set_of_line(line) == c2.set_of_line(line)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=300))
    def test_occupancy_never_exceeds_capacity(self, lines):
        cache = Cache(SMALL)
        for line in lines:
            if not cache.lookup(line, False):
                cache.insert(line, False)
            assert cache.occupancy() <= SMALL.num_lines
            for s in range(SMALL.num_sets):
                assert cache.occupancy_of_set(s) <= SMALL.ways

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    def test_immediate_reaccess_always_hits(self, lines):
        cache = Cache(SMALL)
        for line in lines:
            if not cache.lookup(line, False):
                cache.insert(line, False)
            assert cache.lookup(line, False)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 2**30), min_size=1, max_size=200))
    def test_hits_plus_misses_equals_accesses(self, lines):
        cache = Cache(SMALL, hash_index=True)
        for line in lines:
            cache.lookup(line, False)
        assert cache.hits + cache.misses == len(lines)
