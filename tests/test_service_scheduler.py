"""Scheduler semantics: dedup, priority, backpressure, failure paths.

Fault injection happens at the ``runner`` seam: the scheduler executes
an arbitrary ``(JobSpec) -> dict`` callable per attempt, so tests
substitute runners that block, raise, sleep, or ``os._exit`` — the last
one exercising real child-process crashes that must not take down the
worker pool (the ISSUE's headline failure mode).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.service import (
    BackpressureError,
    FakeClock,
    JobCancelled,
    JobFailed,
    JobSpec,
    JobStatus,
    MemoryStore,
    Scheduler,
)

# Specs are distinguished by seed so each gets its own digest.
def spec(seed: int = 0, **kw) -> JobSpec:
    kw.setdefault("bench", "lbm")
    kw.setdefault("profile", "mini")
    return JobSpec(seed=seed, **kw)


def ok_runner(s: JobSpec) -> dict:
    return {"bench": s.bench, "seed": s.seed}


def sleep_runner(s: JobSpec) -> dict:
    time.sleep(30)
    return {}


def fail_runner(s: JobSpec) -> dict:
    raise ValueError(f"injected failure for seed {s.seed}")


def crash_runner(s: JobSpec) -> dict:
    os._exit(13)  # hard exit: no exception, no pipe message


def crash_once_runner(s: JobSpec) -> dict:
    """Crash the first attempt, succeed on retry (marker on disk because
    attempts run in separate processes)."""
    marker = os.path.join(s.trace_dir, f"seed{s.seed}.marker")
    if not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(13)
    return {"bench": s.bench, "seed": s.seed, "recovered": True}


class TestHappyPath:
    def test_inline_completes_and_counts(self):
        with Scheduler(executor="inline", runner=ok_runner) as sched:
            handle = sched.submit(spec(1))
            assert handle.result(10) == {"bench": "lbm", "seed": 1}
            assert handle.status is JobStatus.COMPLETED
            stats = sched.stats()
        assert stats["completed"] == 1
        assert stats["failed"] == stats["cancelled"] == 0

    def test_results_keyed_by_submission_not_completion(self):
        with Scheduler(executor="inline", runner=ok_runner, shards=4) as sched:
            handles = [sched.submit(spec(i)) for i in range(8)]
            results = [h.result(10) for h in handles]
        assert [r["seed"] for r in results] == list(range(8))

    def test_shard_routing_is_digest_stable(self):
        with Scheduler(executor="inline", runner=ok_runner, shards=3) as sched:
            a = sched.submit(spec(1))
            a.result(10)
        with Scheduler(executor="inline", runner=ok_runner, shards=3) as sched:
            b = sched.submit(spec(1))
            b.result(10)
        assert a.digest == b.digest


class TestCachingAndDedup:
    def test_cache_hit_returns_identical_payload(self):
        store = MemoryStore()
        with Scheduler(executor="inline", runner=ok_runner,
                       store=store) as sched:
            cold = sched.submit(spec(3))
            cold_result = cold.result(10)
            hit = sched.submit(spec(3))
            assert hit.from_cache
            assert hit.result(10) == cold_result
            stats = sched.stats()
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 1
        assert store.stats()["puts"] == 1

    def test_inflight_dedup_runs_once(self):
        gate = threading.Event()
        calls = []

        def gated(s: JobSpec) -> dict:
            calls.append(s.seed)
            gate.wait(10)
            return {"seed": s.seed}

        with Scheduler(executor="inline", runner=gated) as sched:
            first = sched.submit(spec(5))
            # Wait until the job is actually running, then resubmit.
            deadline = time.monotonic() + 5
            while first.status is JobStatus.QUEUED:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            dup = sched.submit(spec(5))
            gate.set()
            assert first.result(10) == dup.result(10) == {"seed": 5}
            stats = sched.stats()
        assert calls == [5]
        assert stats["dedup_hits"] == 1

    def test_force_run_bypasses_cache(self):
        store = MemoryStore()
        with Scheduler(executor="inline", runner=ok_runner,
                       store=store) as sched:
            sched.submit(spec(7)).result(10)
            forced = sched.submit(spec(7, force_run=True))
            assert forced.result(10) == {"bench": "lbm", "seed": 7}
            assert not forced.from_cache
            stats = sched.stats()
        assert stats["cache_hits"] == 0


class TestPriorityAndBackpressure:
    def test_higher_priority_runs_first(self):
        gate = threading.Event()
        order = []

        def recording(s: JobSpec) -> dict:
            if s.bench == "gate":
                gate.wait(10)
            else:
                order.append(s.seed)
            return {}

        with Scheduler(executor="inline", runner=recording,
                       shards=1) as sched:
            blocker = sched.submit(spec(0, bench="gate"))
            deadline = time.monotonic() + 5
            while blocker.status is JobStatus.QUEUED:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            low = sched.submit(spec(1, priority=0))
            high = sched.submit(spec(2, priority=10))
            gate.set()
            low.result(10)
            high.result(10)
        assert order == [2, 1]

    def test_bounded_queue_backpressure(self):
        gate = threading.Event()

        def gated(s: JobSpec) -> dict:
            gate.wait(10)
            return {}

        try:
            with Scheduler(executor="inline", runner=gated, shards=1,
                           queue_capacity=1) as sched:
                running = sched.submit(spec(1))
                deadline = time.monotonic() + 5
                while running.status is JobStatus.QUEUED:
                    assert time.monotonic() < deadline
                    time.sleep(0.005)
                queued = sched.submit(spec(2))  # fills the bounded queue
                with pytest.raises(BackpressureError):
                    sched.submit(spec(3), block=False)
                with pytest.raises(BackpressureError):
                    sched.submit(spec(3), timeout=0.05)
                gate.set()
                running.result(10)
                queued.result(10)
                # Space freed: the same spec now submits fine.
                assert sched.submit(spec(3)).result(10) == {}
        finally:
            gate.set()


class TestFailurePaths:
    def test_error_retries_with_backoff_then_fails(self):
        calls = []

        def flaky(s: JobSpec) -> dict:
            calls.append(s.seed)
            raise ValueError("always fails")

        # Deflaked: backoff flows through an injected FakeClock, so the
        # test asserts the exact exponential *schedule* instead of
        # measuring real sleeps (which flake on loaded CI hosts).  A
        # poll interval above backoff_max_s makes each backoff a single
        # virtual sleep.
        base = 0.05
        clock = FakeClock()
        with Scheduler(executor="inline", runner=flaky, clock=clock,
                       backoff_base_s=base, poll_interval_s=10.0) as sched:
            handle = sched.submit(spec(1, max_retries=2))
            with pytest.raises(JobFailed) as exc:
                handle.result(20)
            stats = sched.stats()
        # Attempt history is ordered and complete: 1 initial + 2 retries.
        assert [a["outcome"] for a in exc.value.attempts] == ["err"] * 3
        assert [a["attempt"] for a in exc.value.attempts] == [0, 1, 2]
        assert len(calls) == 3
        # Backoff ordering: virtual gaps follow the exponential schedule
        # exactly (base * 2**attempt).
        assert clock.sleeps == pytest.approx([base, 2 * base])
        assert stats["retries"] == 2
        assert stats["errors"] == 3
        assert stats["failed"] == 1

    def test_retry_recovers_after_transient_error(self):
        attempts = []

        def transient(s: JobSpec) -> dict:
            attempts.append(s.seed)
            if len(attempts) < 2:
                raise ValueError("transient")
            return {"recovered": True}

        with Scheduler(executor="inline", runner=transient,
                       backoff_base_s=0.01) as sched:
            handle = sched.submit(spec(1, max_retries=2))
            assert handle.result(20) == {"recovered": True}
            assert [a["outcome"] for a in handle.attempts] == ["err", "ok"]

    def test_job_timeout_enforced_and_counted(self):
        with Scheduler(executor="process", runner=sleep_runner,
                       backoff_base_s=0.01) as sched:
            handle = sched.submit(spec(1, timeout_s=0.2, max_retries=1))
            with pytest.raises(JobFailed) as exc:
                handle.result(30)
            stats = sched.stats()
        assert [a["outcome"] for a in exc.value.attempts] == ["timeout"] * 2
        assert stats["timeouts"] == 2
        assert "0.2" in str(exc.value)

    def test_cancel_queued_job(self):
        gate = threading.Event()

        def gated(s: JobSpec) -> dict:
            gate.wait(10)
            return {}

        try:
            with Scheduler(executor="inline", runner=gated, shards=1) as sched:
                blocker = sched.submit(spec(1))
                deadline = time.monotonic() + 5
                while blocker.status is JobStatus.QUEUED:
                    assert time.monotonic() < deadline
                    time.sleep(0.005)
                queued = sched.submit(spec(2))
                assert queued.cancel()
                assert queued.status is JobStatus.CANCELLED
                with pytest.raises(JobCancelled):
                    queued.result(1)
                gate.set()
                blocker.result(10)
                stats = sched.stats()
            assert stats["cancelled"] == 1
            assert stats["completed"] == 1
        finally:
            gate.set()

    def test_cancel_mid_run_terminates_worker(self):
        with Scheduler(executor="process", runner=sleep_runner) as sched:
            handle = sched.submit(spec(1))
            deadline = time.monotonic() + 5
            while handle.status is not JobStatus.RUNNING:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            t0 = time.monotonic()
            assert handle.cancel()
            with pytest.raises(JobCancelled):
                handle.result(10)
            # Termination, not the runner's 30 s sleep.
            assert time.monotonic() - t0 < 5
            assert sched.stats()["cancelled"] == 1

    def test_cancel_terminal_job_returns_false(self):
        with Scheduler(executor="inline", runner=ok_runner) as sched:
            handle = sched.submit(spec(1))
            handle.result(10)
            assert not handle.cancel()


class TestObservability:
    def test_counters_and_spans_exported_via_obs(self):
        from repro.obs import Observer, SpanEvent

        observer = Observer(sample_interval_ns=0.0)
        store = MemoryStore()
        with Scheduler(executor="inline", runner=ok_runner, store=store,
                       observer=observer) as sched:
            sched.submit(spec(1)).result(10)
            sched.submit(spec(1)).result(10)  # cache hit
            names = observer.counter_names
            assert "service.cache_hits" in names
            assert "service.cache_misses" in names
            assert "service.store.entries" in names
            observer.sample(1.0)
            row = dict(zip(names, observer.samples.last()[1]))
        assert row["service.cache_hits"] == 1.0
        assert row["service.cache_misses"] == 1.0
        assert row["service.completed"] == 1.0
        assert row["service.store.entries"] == 1.0
        spans = [e for e in observer.events if isinstance(e, SpanEvent)
                 and e.track == "service"]
        assert len(spans) == 1  # one execution attempt, cache hit adds none
        assert spans[0].args["outcome"] == "ok"

    def test_retry_emits_instant_events(self):
        from repro.obs import InstantEvent, Observer

        observer = Observer(sample_interval_ns=0.0)

        def flaky(s: JobSpec) -> dict:
            if len([e for e in observer.events
                    if isinstance(e, InstantEvent)]) == 0:
                raise ValueError("first attempt fails")
            return {}

        with Scheduler(executor="inline", runner=flaky, observer=observer,
                       backoff_base_s=0.01) as sched:
            sched.submit(spec(1, max_retries=1)).result(10)
        retries = [e for e in observer.events
                   if isinstance(e, InstantEvent) and e.track == "service"]
        assert len(retries) == 1
        assert retries[0].args["reason"] == "err"


class TestWorkerCrashIsolation:
    def test_crash_is_retried_and_recovers(self, tmp_path):
        with Scheduler(executor="process", runner=crash_once_runner,
                       backoff_base_s=0.01) as sched:
            handle = sched.submit(
                spec(1, trace_dir=str(tmp_path), force_run=True,
                     max_retries=2)
            )
            result = handle.result(30)
            stats = sched.stats()
        assert result["recovered"] is True
        assert [a["outcome"] for a in handle.attempts] == ["crash", "ok"]
        assert stats["crashes"] == 1
        assert stats["retries"] == 1

    def test_crashes_do_not_take_down_the_pool(self, tmp_path):
        """Crashing workers and healthy jobs interleave; all complete."""

        def mixed(s: JobSpec) -> dict:
            if s.bench == "crashy":
                return crash_once_runner(s)
            return {"bench": s.bench, "seed": s.seed}

        with Scheduler(executor="process", runner=mixed, shards=2,
                       backoff_base_s=0.01) as sched:
            handles = []
            for i in range(3):
                handles.append(sched.submit(
                    spec(i, bench="crashy", trace_dir=str(tmp_path),
                         force_run=True, max_retries=2)
                ))
                handles.append(sched.submit(spec(i, bench="healthy")))
            results = [h.result(60) for h in handles]
            stats = sched.stats()
        assert all(r is not None for r in results)
        assert stats["completed"] == 6
        assert stats["crashes"] == 3
        # The pool survived every crash: jobs submitted after the crashes
        # still ran to completion on the same shard threads.
        assert stats["failed"] == 0

    def test_exhausted_crash_retries_fail_cleanly(self):
        with Scheduler(executor="process", runner=crash_runner,
                       backoff_base_s=0.01) as sched:
            handle = sched.submit(spec(1, max_retries=1))
            with pytest.raises(JobFailed) as exc:
                handle.result(30)
        assert "exited with code 13" in str(exc.value)
        assert [a["outcome"] for a in exc.value.attempts] == ["crash"] * 2
